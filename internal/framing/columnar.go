// Columnar put/get primitives for hand-rolled frame bodies. The hot
// frames of the distrib wire protocol encode structs as flat columns —
// varint scalars, length-prefixed strings, packed float64/uint32 runs —
// instead of gob's reflective self-describing streams. The encoding
// side is alloc-light append functions over a caller-owned []byte; the
// decoding side is a sticky-error cursor (Dec) with the same hostile-
// input discipline as the frame reader: every declared element count is
// checked against the bytes actually remaining BEFORE allocation, so a
// corrupt four-byte count cannot make a reader allocate gigabytes.
package framing

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated is returned (wrapped) by Dec when a frame body declares
// more content than it carries — a truncated or corrupt columnar body.
var ErrTruncated = errors.New("framing: truncated columnar body")

// AppendUvarint appends v in unsigned LEB128.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends v zigzag-encoded, cheap for small magnitudes of
// either sign.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendBool appends a single 0/1 byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendString appends a uvarint byte count followed by the raw bytes.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendStrings appends a uvarint element count followed by each string.
func AppendStrings(b []byte, ss []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = AppendString(b, s)
	}
	return b
}

// AppendInts appends a uvarint element count followed by each element
// as a zigzag varint — the column form for index slices, whose values
// are small and occasionally negative.
func AppendInts(b []byte, vs []int) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = binary.AppendVarint(b, int64(v))
	}
	return b
}

// AppendUvarints appends a uvarint element count followed by each
// element as a uvarint.
func AppendUvarints(b []byte, vs []uint64) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = binary.AppendUvarint(b, v)
	}
	return b
}

// AppendInt32s appends a uvarint element count followed by each element
// as a zigzag varint.
func AppendInt32s(b []byte, vs []int32) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = binary.AppendVarint(b, int64(v))
	}
	return b
}

// AppendFloat64 appends one float64 as 8 little-endian IEEE-754 bytes.
func AppendFloat64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendBytes appends a uvarint byte count followed by the raw bytes —
// an opaque sub-segment (a nested encoding, a bit-flag column).
func AppendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendUint32s appends a uvarint element count followed by the packed
// column: 4 little-endian bytes per element.
func AppendUint32s(b []byte, vs []uint32) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint32(b, v)
	}
	return b
}

// AppendUint32 appends one uint32 as 4 little-endian bytes.
func AppendUint32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// AppendUint64 appends one uint64 as 8 little-endian bytes — the
// column form for hashes and fingerprints, which don't varint-compress.
func AppendUint64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// AppendUint64s appends a uvarint element count followed by the packed
// column: 8 little-endian bytes per element.
func AppendUint64s(b []byte, vs []uint64) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, v)
	}
	return b
}

// AppendFloat64s appends a uvarint element count followed by the packed
// column: 8 little-endian IEEE-754 bytes per element.
func AppendFloat64s(b []byte, vs []float64) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// Dec is a sticky-error cursor over one columnar frame body. Getters
// return zero values after the first error; check Err (or Done) once at
// the end instead of after every field. Byte slices returned by String
// and Bytes are copies — only Raw aliases its input — so the frame
// buffer can be reused.
type Dec struct {
	b   []byte
	err error
}

// NewDec returns a cursor over body.
func NewDec(body []byte) *Dec { return &Dec{b: body} }

// Err returns the first decode error, or nil.
func (d *Dec) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Dec) Remaining() int { return len(d.b) }

// Done returns the first decode error, or an error if unconsumed bytes
// remain — a strict end-of-body check for fixed-layout frames.
func (d *Dec) Done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("framing: %d trailing bytes after columnar body", len(d.b))
	}
	return nil
}

func (d *Dec) fail(context string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrTruncated, context)
	}
}

// Fail forces the cursor into its sticky error state with a truncation
// error — for callers layering their own count or shape bounds on top
// of the primitives (e.g. "n elements of ≥k bytes each must fit in what
// remains" before allocating n of anything).
func (d *Dec) Fail(context string) { d.fail(context) }

// Uvarint reads one unsigned LEB128 value.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Varint reads one zigzag varint.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Int reads one zigzag varint as an int.
func (d *Dec) Int() int { return int(d.Varint()) }

// Byte reads one raw byte.
func (d *Dec) Byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail("byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// Bool reads one 0/1 byte; any other value is a decode error (a corrupt
// flag must not silently normalize to true).
func (d *Dec) Bool() bool {
	v := d.Byte()
	if d.err == nil && v > 1 {
		d.err = fmt.Errorf("framing: bool byte %d", v)
	}
	return v == 1
}

// Float64 reads one packed float64 (8 little-endian bytes).
func (d *Dec) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

// Bytes reads a uvarint byte count and that many bytes, copied out.
func (d *Dec) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail("bytes")
		return nil
	}
	p := make([]byte, n)
	copy(p, d.b[:n])
	d.b = d.b[n:]
	return p
}

// Raw reads a uvarint byte count and returns that many bytes WITHOUT
// copying — the one aliasing getter, for large one-shot sub-segments
// (nested encodings decoded in place) whose backing frame buffer
// outlives the decode. Use Bytes when the buffer may be reused.
func (d *Dec) Raw() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail("raw segment")
		return nil
	}
	p := d.b[:n:n]
	d.b = d.b[n:]
	return p
}

// String reads a uvarint byte count and that many bytes, copied out.
func (d *Dec) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail("string")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// Strings reads a string column. The declared count is bounded by the
// remaining bytes (each element costs at least its 1-byte count).
func (d *Dec) Strings() []string {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail("strings count")
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.String()
		if d.err != nil {
			return nil
		}
	}
	return out
}

// Ints reads a zigzag-varint column into []int.
func (d *Dec) Ints() []int {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail("ints count")
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.Varint())
		if d.err != nil {
			return nil
		}
	}
	return out
}

// Uvarints reads a uvarint column into []uint64.
func (d *Dec) Uvarints() []uint64 {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail("uvarints count")
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.Uvarint()
		if d.err != nil {
			return nil
		}
	}
	return out
}

// Int32s reads a zigzag-varint column into []int32.
func (d *Dec) Int32s() []int32 {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail("int32s count")
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(d.Varint())
		if d.err != nil {
			return nil
		}
	}
	return out
}

// Uint32s reads a packed uint32 column (4 bytes per element).
func (d *Dec) Uint32s() []uint32 {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b))/4 {
		d.fail("uint32s count")
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(d.b[i*4:])
	}
	d.b = d.b[n*4:]
	return out
}

// Uint32 reads one packed uint32 (4 little-endian bytes).
func (d *Dec) Uint32() uint32 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 4 {
		d.fail("uint32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

// Uint64 reads one packed uint64 (8 little-endian bytes).
func (d *Dec) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("uint64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

// Uint64s reads a packed uint64 column (8 bytes per element).
func (d *Dec) Uint64s() []uint64 {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b))/8 {
		d.fail("uint64s count")
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(d.b[i*8:])
	}
	d.b = d.b[n*8:]
	return out
}

// Float64s reads a packed float64 column (8 bytes per element).
func (d *Dec) Float64s() []float64 {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b))/8 {
		d.fail("float64s count")
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.b[i*8:]))
	}
	d.b = d.b[n*8:]
	return out
}
