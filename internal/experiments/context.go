package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/core"
	"github.com/activeiter/activeiter/internal/datagen"
	"github.com/activeiter/activeiter/internal/eval"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/linalg"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/partition"
	"github.com/activeiter/activeiter/internal/schema"
	"github.com/activeiter/activeiter/internal/svm"
)

// Preset bundles a dataset configuration with the experimental protocol
// scale.
type Preset struct {
	Name string
	Data datagen.Config
	// Folds is the cross-validation fold count (paper: 10).
	Folds int
	// ThetaValues sweeps the NP-ratio θ (paper: 5..50 step 5).
	ThetaValues []int
	// GammaValues sweeps the sample-ratio γ (paper: 0.1..1.0 step 0.1).
	GammaValues []float64
	// FixedTheta is Table IV's θ (paper: 50); FixedGamma is Table III's
	// γ (paper: 0.6).
	FixedTheta int
	FixedGamma float64
	// Budgets sweeps Figure 5's query budget b.
	Budgets []int
	// Seed drives the whole protocol.
	Seed int64
	// Workers caps cell-level parallelism; 0 means serial.
	Workers int
	// Partitions routes the PU training family through the partitioned
	// alignment pipeline with this many candidate-space partitions; ≤ 1
	// keeps the monolithic path.
	Partitions int
}

// PaperPreset runs the full protocol shape of the paper on the
// paper-shaped dataset. Minutes of runtime.
func PaperPreset() Preset {
	return Preset{
		Name:        "paper",
		Data:        datagen.PaperShape(),
		Folds:       10,
		ThetaValues: []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50},
		GammaValues: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		FixedTheta:  50,
		FixedGamma:  0.6,
		Budgets:     []int{10, 25, 50, 75, 100},
		Seed:        2019,
		Workers:     8,
	}
}

// SmallPreset is the default: the full sweep shape on the small dataset.
// Tens of seconds.
func SmallPreset() Preset {
	p := PaperPreset()
	p.Name = "small"
	p.Data = datagen.Small()
	p.Workers = 8
	return p
}

// FullPreset runs a trimmed protocol on the crawl-scale dataset —
// Figure 4's scalability regime. Minutes of runtime, a few GB.
func FullPreset() Preset {
	return Preset{
		Name:        "full",
		Data:        datagen.FullScale(),
		Folds:       3,
		ThetaValues: []int{5, 10},
		GammaValues: []float64{0.6},
		FixedTheta:  5,
		FixedGamma:  0.6,
		Budgets:     []int{100},
		Seed:        2019,
		Workers:     8,
	}
}

// XLPreset runs a minimal protocol on the ~10×-crawl dataset — the
// partitioned-alignment stress scale. θ is small because the anchor set
// is huge (θ=2 already means a ~100k-link candidate pool); the point is
// user-count scale, not NP-ratio sweeps. Tens of minutes, tens of GB.
func XLPreset() Preset {
	return Preset{
		Name:        "xl",
		Data:        datagen.XLScale(),
		Folds:       2,
		ThetaValues: []int{2},
		GammaValues: []float64{0.6},
		FixedTheta:  2,
		FixedGamma:  0.6,
		Budgets:     []int{100},
		Seed:        2019,
		Workers:     4,
	}
}

// TinyPreset is for tests: trimmed sweeps on the tiny dataset.
func TinyPreset() Preset {
	return Preset{
		Name:        "tiny",
		Data:        datagen.Tiny(),
		Folds:       3,
		ThetaValues: []int{5, 20},
		GammaValues: []float64{0.3, 1.0},
		FixedTheta:  20,
		FixedGamma:  0.6,
		Budgets:     []int{5, 10},
		Seed:        7,
		Workers:     2,
	}
}

// MethodKind distinguishes the training families.
type MethodKind int

const (
	// KindPU is the PU-learning iterative family (ActiveIter and
	// Iter-MPMD).
	KindPU MethodKind = iota
	// KindSVM is the supervised baseline family.
	KindSVM
)

// FeatureKind selects the feature space.
type FeatureKind int

const (
	// MPMD uses meta paths and meta diagrams (31 features).
	MPMD FeatureKind = iota
	// MP uses meta paths only (6 features).
	MP
)

// Method is one comparison entry in the paper's tables.
type Method struct {
	Name     string
	Kind     MethodKind
	Features FeatureKind
	Budget   int
	Strategy active.Strategy
}

// StandardMethods returns the six methods of Tables III and IV, in the
// paper's row order.
func StandardMethods() []Method {
	return []Method{
		{Name: "ActiveIter-100", Kind: KindPU, Features: MPMD, Budget: 100, Strategy: active.Conflict{}},
		{Name: "ActiveIter-50", Kind: KindPU, Features: MPMD, Budget: 50, Strategy: active.Conflict{}},
		{Name: "ActiveIter-Rand-50", Kind: KindPU, Features: MPMD, Budget: 50, Strategy: active.Random{}},
		{Name: "Iter-MPMD", Kind: KindPU, Features: MPMD},
		{Name: "SVM-MPMD", Kind: KindSVM, Features: MPMD},
		{Name: "SVM-MP", Kind: KindSVM, Features: MP},
	}
}

// cellContext owns the per-cell state: one forked counter and two
// extractors over the shared pair. Cells run in parallel; every fork
// shares the base counter's adjacency matrices and attribute-only count
// cache, so only the anchor-dependent layer is recounted per fold.
type cellContext struct {
	pair     *hetnet.AlignedPair
	base     *metadiag.Counter
	counter  *metadiag.Counter
	extFull  *metadiag.Extractor
	extPaths *metadiag.Extractor
	oracle   active.Oracle
	seed     int64
	// partitions > 1 routes PU methods through the partitioned pipeline
	// (each partition forks base again).
	partitions int
	// skipFoldFeatures elides the fold-wide feature matrices when every
	// method in the cell takes the partitioned path (shards extract
	// their own).
	skipFoldFeatures bool
	// planner caches fold-independent partition-plan inputs. Sweeps
	// pass one shared planner into every cell (the inputs are pair-level
	// and Plan is safe for concurrent use); otherwise it is built lazily
	// on the first partitioned method.
	planner *partition.Planner
}

func newCellContext(base *metadiag.Counter, seed int64) *cellContext {
	pair := base.Pair()
	counter := base.Fork()
	lib := schema.StandardLibrary()
	return &cellContext{
		pair:     pair,
		base:     base,
		counter:  counter,
		extFull:  metadiag.NewExtractor(counter, lib.All(), true),
		extPaths: metadiag.NewExtractor(counter, lib.PathsOnly(), true),
		oracle:   active.NewTruthOracle(pair),
		seed:     seed,
	}
}

// newBaseCounter builds and warms the dataset-wide shared counter: one
// counting pass over the standard library's anchor-free diagrams caches
// every attribute-only sub-diagram in the layer all forked per-cell
// counters share, so the Lemma-2 covering-set reuse crosses fold and
// worker boundaries instead of being rebuilt per cell. Anchor-dependent
// diagrams are skipped — their counts would land in the base counter's
// private layer, which forks never read (each fold recounts them
// against its own training anchors anyway); their anchor-free
// sub-patterns reach the shared layer on the first fold that needs
// them.
func newBaseCounter(pair *hetnet.AlignedPair) (*metadiag.Counter, error) {
	if err := prewarmPair(pair); err != nil {
		return nil, err
	}
	base, err := metadiag.NewCounter(pair)
	if err != nil {
		return nil, err
	}
	for _, n := range schema.StandardLibrary().All() {
		if metadiag.UsesAnchor(n.D) {
			continue
		}
		if _, err := base.Count(n.D); err != nil {
			return nil, err
		}
	}
	return base, nil
}

// prewarmPair materializes every adjacency cache so parallel cell
// contexts only read the shared networks.
func prewarmPair(pair *hetnet.AlignedPair) error {
	for _, g := range []*hetnet.Network{pair.G1, pair.G2} {
		for _, lt := range g.LinkTypes() {
			if _, err := g.Adjacency(lt); err != nil {
				return err
			}
		}
	}
	return nil
}

// foldData is the per-fold shared state all methods reuse: the candidate
// pool, its feature matrices under both feature spaces, and the test
// bookkeeping.
type foldData struct {
	split      eval.Split
	pool       []hetnet.Anchor
	labeledPos []int
	xFull      *linalg.Dense
	xPaths     *linalg.Dense
	testIdx    []int
	testTruth  []float64
	trainIdx   []int // trainPos then trainNeg rows, for SVM training
	trainY     []float64
	// plan caches the fold's budgetless partition plan; the shard
	// assignment is method-independent (only the budget split differs).
	plan *partition.Plan
}

// prepareFold recomputes features against the fold's training anchors
// and assembles the pool: [trainPos | trainNeg | testPos | testNeg].
// When every method in the cell takes the partitioned path the
// fold-wide extraction is skipped — each shard extracts its own slice
// from a fork of base, and the fold matrices would be dead weight (at
// crawl scale they are the dominant per-fold cost).
func (ctx *cellContext) prepareFold(split eval.Split) (*foldData, error) {
	if !ctx.skipFoldFeatures {
		ctx.counter.SetAnchors(split.TrainPos)
		if err := ctx.extFull.Recompute(); err != nil {
			return nil, err
		}
		if err := ctx.extPaths.Recompute(); err != nil {
			return nil, err
		}
	}
	fd := &foldData{split: split}
	fd.pool = append(fd.pool, split.TrainPos...)
	fd.pool = append(fd.pool, split.TrainNeg...)
	fd.pool = append(fd.pool, split.TestPos...)
	fd.pool = append(fd.pool, split.TestNeg...)
	for i := range split.TrainPos {
		fd.labeledPos = append(fd.labeledPos, i)
		fd.trainIdx = append(fd.trainIdx, i)
		fd.trainY = append(fd.trainY, 1)
	}
	offset := len(split.TrainPos)
	for i := range split.TrainNeg {
		fd.trainIdx = append(fd.trainIdx, offset+i)
		fd.trainY = append(fd.trainY, 0)
	}
	offset += len(split.TrainNeg)
	for i := range split.TestPos {
		fd.testIdx = append(fd.testIdx, offset+i)
		fd.testTruth = append(fd.testTruth, 1)
	}
	offset += len(split.TestPos)
	for i := range split.TestNeg {
		fd.testIdx = append(fd.testIdx, offset+i)
		fd.testTruth = append(fd.testTruth, 0)
	}
	if ctx.skipFoldFeatures {
		return fd, nil
	}
	var err error
	if fd.xFull, err = ctx.extFull.FeatureMatrix(fd.pool); err != nil {
		return nil, err
	}
	if fd.xPaths, err = ctx.extPaths.FeatureMatrix(fd.pool); err != nil {
		return nil, err
	}
	return fd, nil
}

// runMethod trains one method on a prepared fold and scores it on the
// test pools. It returns the confusion plus the wall time and, for PU
// methods, the training result for trace inspection.
func (ctx *cellContext) runMethod(m Method, fd *foldData, seed int64) (eval.Confusion, *core.Result, time.Duration, error) {
	x := fd.xFull
	if m.Features == MP {
		x = fd.xPaths
	}
	start := time.Now()
	var conf eval.Confusion
	switch m.Kind {
	case KindPU:
		if ctx.partitions > 1 {
			return ctx.runPartitionedPU(m, fd, seed, start)
		}
		cfg := core.Config{
			Budget:   m.Budget,
			Strategy: m.Strategy,
			Seed:     seed,
		}
		if m.Budget == 0 {
			cfg.Strategy = nil
		}
		res, err := core.Train(core.Problem{
			Links:      fd.pool,
			X:          x,
			LabeledPos: fd.labeledPos,
			Oracle:     ctx.oracle,
		}, cfg)
		if err != nil {
			return conf, nil, 0, err
		}
		for k, idx := range fd.testIdx {
			l := fd.pool[idx]
			if res.WasQueried(l.I, l.J) {
				continue // queried labels are oracle-given: excluded
			}
			conf.Add(res.Y[idx], fd.testTruth[k])
		}
		return conf, res, time.Since(start), nil
	case KindSVM:
		_, d := x.Dims()
		xt := linalg.NewDense(len(fd.trainIdx), d)
		for r, idx := range fd.trainIdx {
			copy(xt.RowView(r), x.RowView(idx))
		}
		model, err := svm.Train(xt, fd.trainY, svm.Config{Seed: seed})
		if err != nil {
			return conf, nil, 0, err
		}
		for k, idx := range fd.testIdx {
			conf.Add(model.Predict(x.RowView(idx)), fd.testTruth[k])
		}
		return conf, nil, time.Since(start), nil
	default:
		return conf, nil, 0, fmt.Errorf("experiments: unknown method kind %d", m.Kind)
	}
}

// runPartitionedPU trains a PU method through the partitioned pipeline:
// shard the fold's candidate pool, align every shard on a fork of the
// cell's base counter, reconcile, and score the merged labels.
func (ctx *cellContext) runPartitionedPU(m Method, fd *foldData, seed int64, start time.Time) (eval.Confusion, *core.Result, time.Duration, error) {
	var conf eval.Confusion
	trainPos := fd.split.TrainPos
	candidates := fd.pool[len(trainPos):]
	feats := schema.StandardLibrary().All()
	if m.Features == MP {
		feats = schema.StandardLibrary().PathsOnly()
	}
	// One planner per cell: adjacency, propagation operators, and the
	// coarse-similarity propagation are fold- and method-independent.
	if ctx.planner == nil {
		pl, err := partition.NewPlanner(ctx.base)
		if err != nil {
			return conf, nil, 0, err
		}
		ctx.planner = pl
	}
	// One shard assignment per fold: methods share trainPos/candidates
	// and differ only in budget, so plan once and re-split per method.
	if fd.plan == nil {
		var err error
		if fd.plan, err = ctx.planner.Plan(trainPos, candidates, 0, partition.Config{K: ctx.partitions}); err != nil {
			return conf, nil, 0, err
		}
	}
	plan := fd.plan.WithBudget(m.Budget)
	// Cells already fan out across Preset.Workers goroutines; keep the
	// shard pipelines serial inside each cell so a sweep cannot multiply
	// K heavy pipelines per worker.
	res, err := partition.Align(ctx.base, plan, partition.TrainOptions{
		Features: feats,
		Core:     core.Config{Budget: m.Budget, Strategy: m.Strategy, Seed: seed},
		Workers:  1,
	}, ctx.oracle)
	if err != nil {
		return conf, nil, 0, err
	}
	for k, idx := range fd.testIdx {
		l := fd.pool[idx]
		if res.WasQueried(l.I, l.J) {
			continue // queried labels are oracle-given: excluded
		}
		lab, _ := res.Label(l.I, l.J)
		conf.Add(lab, fd.testTruth[k])
	}
	return conf, nil, time.Since(start), nil
}

// runCell runs every method across all folds of one (θ, γ) cell,
// working on a fork of the shared base counter.
func runCell(base *metadiag.Counter, planner *partition.Planner, methods []Method, theta int, gamma float64, folds int, seed int64, partitions int) (map[string]eval.MetricSet, error) {
	pair := base.Pair()
	ctx := newCellContext(base, seed)
	ctx.partitions = partitions
	ctx.planner = planner
	if partitions > 1 {
		ctx.skipFoldFeatures = true
		for _, m := range methods {
			if m.Kind != KindPU {
				ctx.skipFoldFeatures = false
				break
			}
		}
	}
	rng := rand.New(rand.NewSource(seed + int64(theta)*1_000_003 + int64(gamma*1000)*7919))
	neg, err := eval.SampleNegatives(pair, theta*len(pair.Anchors), rng)
	if err != nil {
		return nil, err
	}
	splits, err := eval.KFoldSplits(pair.Anchors, neg, folds, gamma, rng)
	if err != nil {
		return nil, err
	}
	perMethod := make(map[string][]eval.Confusion, len(methods))
	for _, split := range splits {
		fd, err := ctx.prepareFold(split)
		if err != nil {
			return nil, err
		}
		for _, m := range methods {
			conf, _, _, err := ctx.runMethod(m, fd, seed+int64(split.Fold))
			if err != nil {
				return nil, fmt.Errorf("experiments: %s fold %d: %w", m.Name, split.Fold, err)
			}
			perMethod[m.Name] = append(perMethod[m.Name], conf)
		}
	}
	out := make(map[string]eval.MetricSet, len(methods))
	for name, confs := range perMethod {
		out[name] = eval.SummarizeConfusions(confs)
	}
	return out, nil
}
