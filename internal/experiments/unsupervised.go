package experiments

import (
	"fmt"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/core"
	"github.com/activeiter/activeiter/internal/datagen"
	"github.com/activeiter/activeiter/internal/eval"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/isorank"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/schema"
)

// RunUnsupervisedComparison contrasts the unsupervised IsoRank baseline
// (no labels at all) with Iter-MPMD and ActiveIter trained on 10% of the
// anchors, all producing a full one-to-one matching evaluated by anchor
// recovery: the fraction of ground-truth anchors present in the
// predicted matching, and the matching's precision. This quantifies
// what the paper's (active) supervision buys over the classic
// unsupervised alignment family its related-work section cites.
func RunUnsupervisedComparison(pre Preset) (*Table, error) {
	pair, err := datagen.Generate(pre.Data)
	if err != nil {
		return nil, err
	}
	truth := pair.AnchorSet()
	nTrain := len(pair.Anchors) / 10
	if nTrain < 1 {
		nTrain = 1
	}
	train := pair.Anchors[:nTrain]

	type entry struct {
		name    string
		matches []hetnet.Anchor
		trained int
		queries int
	}
	var entries []entry

	// IsoRank: fully unsupervised.
	iso, err := isorank.Align(pair, isorank.Config{})
	if err != nil {
		return nil, err
	}
	entries = append(entries, entry{name: "IsoRank (unsupervised)", matches: iso.Matches})

	// Supervised runs over diagram-proposed candidates.
	counter, err := metadiag.NewCounter(pair)
	if err != nil {
		return nil, err
	}
	counter.SetAnchors(train)
	lib := schema.StandardLibrary()
	ext := metadiag.NewExtractor(counter, lib.All(), true)
	cands, err := counter.Candidates(lib.All(), 5)
	if err != nil {
		return nil, err
	}
	// The candidate pool is all hard negatives by construction; add
	// background random negatives so the ridge calibration sees the easy
	// mass it would in the paper's NP-ratio protocol.
	background, err := eval.SampleNegatives(pair, 10*len(pair.Anchors), newRunRNG(pre.Seed, 1, 1300))
	if err != nil {
		return nil, err
	}
	links := append(append([]hetnet.Anchor{}, train...), cands...)
	seen := make(map[int64]bool, len(links))
	for _, l := range links {
		seen[hetnet.Key(l.I, l.J)] = true
	}
	for _, l := range background {
		if !seen[hetnet.Key(l.I, l.J)] {
			seen[hetnet.Key(l.I, l.J)] = true
			links = append(links, l)
		}
	}
	x, err := ext.FeatureMatrix(links)
	if err != nil {
		return nil, err
	}
	labeled := make([]int, len(train))
	for k := range labeled {
		labeled[k] = k
	}
	runPU := func(name string, budget int) error {
		cfg := core.Config{Seed: pre.Seed}
		if budget > 0 {
			cfg.Budget = budget
			cfg.Strategy = active.Conflict{}
		}
		prob := core.Problem{Links: links, X: x, LabeledPos: labeled}
		if budget > 0 {
			prob.Oracle = active.NewTruthOracle(pair)
		}
		res, err := core.Train(prob, cfg)
		if err != nil {
			return err
		}
		var matches []hetnet.Anchor
		for idx, l := range links {
			if idx >= nTrain && res.Y[idx] == 1 {
				matches = append(matches, l)
			}
		}
		entries = append(entries, entry{name: name, matches: matches, trained: nTrain, queries: res.QueryCount()})
		return nil
	}
	if err := runPU("Iter-MPMD (10% labels)", 0); err != nil {
		return nil, err
	}
	if err := runPU("ActiveIter-50 (10% labels)", 50); err != nil {
		return nil, err
	}

	t := &Table{
		Title:     fmt.Sprintf("Unsupervised comparison — anchor recovery over the full pair space (preset %q)", pre.Name),
		ColHeader: "method",
		Cols:      []string{"recovered", "precision", "labels", "queries"},
	}
	sec := Section{Name: "anchor recovery"}
	for _, e := range entries {
		correct := 0
		for _, m := range e.matches {
			if truth[hetnet.Key(m.I, m.J)] {
				correct++
			}
		}
		// Recovery over the anchors the method could still find (the
		// supervised methods already hold nTrain of them as input).
		denom := len(pair.Anchors) - e.trained
		var precision float64
		if len(e.matches) > 0 {
			precision = float64(correct) / float64(len(e.matches))
		}
		sec.Rows = append(sec.Rows, TableRow{Label: e.name, Cells: []string{
			fmt.Sprintf("%.3f (%d/%d)", float64(correct)/float64(denom), correct, denom),
			fmt.Sprintf("%.3f", precision),
			fmt.Sprint(e.trained),
			fmt.Sprint(e.queries),
		}})
	}
	t.Sections = []Section{sec}
	return t, nil
}
