package experiments

import (
	"testing"
)

// The distributed experiment's whole point: every execution mode of the
// same shard plan produces the same alignment, and extraction ships
// fewer bytes than the full pair would.
func TestRunDistributedModesAgree(t *testing.T) {
	pre := TinyPreset()
	pre.Partitions = 2
	points, err := RunDistributedPoints(pre, DistributedConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want in-process + loopback", len(points))
	}
	ref := points[0]
	if ref.Mode != "in-process" {
		t.Fatalf("first point is %q, want in-process", ref.Mode)
	}
	for _, p := range points[1:] {
		if p.F1 != ref.F1 || p.Precision != ref.Precision || p.Recall != ref.Recall {
			t.Errorf("%s diverged from in-process: F1 %v vs %v", p.Mode, p.F1, ref.F1)
		}
		if p.Queries != ref.Queries {
			t.Errorf("%s spent %d queries, in-process %d", p.Mode, p.Queries, ref.Queries)
		}
		if p.JobBytes <= 0 {
			t.Errorf("%s shipped no job bytes", p.Mode)
		}
		if p.JobBytes >= p.JobBytesFull {
			t.Errorf("%s: extraction did not reduce job size (%d ≥ %d)", p.Mode, p.JobBytes, p.JobBytesFull)
		}
	}
	tab, err := RunDistributedWith(pre, DistributedConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Sections) != 1 || len(tab.Sections[0].Rows) != 2 {
		t.Fatalf("unexpected table shape: %+v", tab)
	}
}
