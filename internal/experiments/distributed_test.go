package experiments

import (
	"testing"
)

// The distributed experiment's whole point: every execution mode of the
// same shard plan produces the same alignment, seeded jobs ship far
// fewer bytes than the unseeded baseline, and extraction still beats
// the full pair when seeding is off.
func TestRunDistributedModesAgree(t *testing.T) {
	pre := TinyPreset()
	pre.Partitions = 2
	points, err := RunDistributedPoints(pre, DistributedConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points, want in-process + loopback + loopback/noseed", len(points))
	}
	ref := points[0]
	if ref.Mode != "in-process" {
		t.Fatalf("first point is %q, want in-process", ref.Mode)
	}
	byMode := map[string]DistributedPoint{}
	for _, p := range points[1:] {
		byMode[p.Mode] = p
		if p.F1 != ref.F1 || p.Precision != ref.Precision || p.Recall != ref.Recall {
			t.Errorf("%s diverged from in-process: F1 %v vs %v", p.Mode, p.F1, ref.F1)
		}
		if p.Queries != ref.Queries {
			t.Errorf("%s spent %d queries, in-process %d", p.Mode, p.Queries, ref.Queries)
		}
		if p.JobBytes <= 0 {
			t.Errorf("%s shipped no job bytes", p.Mode)
		}
		if p.JobBytes >= p.JobBytesFull {
			t.Errorf("%s: jobs not smaller than the full pair (%d ≥ %d)", p.Mode, p.JobBytes, p.JobBytesFull)
		}
	}
	seeded, noseed := byMode["loopback"], byMode["loopback/noseed"]
	// Loopback workers share the coordinator's process, so the
	// pre-installed warm counter answers every SeedRef: negotiation
	// bytes flow, but no seed body ships.
	if seeded.SeedShips != 0 || seeded.SeedBytes <= 0 {
		t.Errorf("seeded loopback: want 0 ships with non-zero negotiation bytes, got %+v", seeded)
	}
	if noseed.SeedShips != 0 || noseed.SeedBytes != 0 {
		t.Errorf("noseed loopback shipped a seed: %+v", noseed)
	}
	if seeded.JobBytes >= noseed.JobBytes {
		t.Errorf("seeding did not shrink jobs: seeded %d bytes, unseeded %d bytes", seeded.JobBytes, noseed.JobBytes)
	}
	tab, err := RunDistributedWith(pre, DistributedConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Sections) != 1 || len(tab.Sections[0].Rows) != 3 {
		t.Fatalf("unexpected table shape: %+v", tab)
	}
}

// TestRunDistributedSessionRounds: with Rounds > 1 the runner adds the
// sticky-session modes; the delta mode must produce the full-reship
// mode's exact alignment while shipping no full jobs (only JobRef
// deltas) from round 2 on.
func TestRunDistributedSessionRounds(t *testing.T) {
	pre := TinyPreset()
	pre.Partitions = 2
	points, err := RunDistributedPoints(pre, DistributedConfig{Workers: 2, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]DistributedPoint{}
	for _, p := range points {
		byMode[p.Mode] = p
	}
	full, ok := byMode["loopback/rounds-full"]
	if !ok {
		t.Fatal("full-reship session mode missing")
	}
	delta, ok := byMode["loopback/rounds-delta"]
	if !ok {
		t.Fatal("delta session mode missing")
	}
	if delta.F1 != full.F1 || delta.Precision != full.Precision || delta.Recall != full.Recall {
		t.Errorf("delta session diverged from full re-ship: F1 %v vs %v", delta.F1, full.F1)
	}
	if delta.Queries != full.Queries {
		t.Errorf("delta session spent %d queries, full re-ship %d", delta.Queries, full.Queries)
	}
	if delta.CacheHits == 0 || delta.DeltaBytes == 0 {
		t.Errorf("delta session cache audit empty: hits=%d deltaBytes=%d", delta.CacheHits, delta.DeltaBytes)
	}
	if full.CacheHits != 0 || full.DeltaBytes != 0 {
		t.Errorf("full re-ship session used the cache: %+v", full)
	}
	if len(delta.RoundDetail) != 2 || len(full.RoundDetail) != 2 {
		t.Fatalf("round details missing: %d/%d rows", len(delta.RoundDetail), len(full.RoundDetail))
	}
	if r2 := delta.RoundDetail[1]; r2.JobBytes != 0 || r2.DeltaBytes == 0 {
		t.Errorf("delta round 2 shipped %d full-job bytes, %d delta bytes", r2.JobBytes, r2.DeltaBytes)
	}
	if r2 := full.RoundDetail[1]; r2.JobBytes == 0 {
		t.Error("full re-ship round 2 shipped no job bytes")
	}
	// The headline acceptance number: round-2 delta traffic under half
	// of what full re-ship pays.
	if delta.RoundDetail[1].DeltaBytes*2 > full.RoundDetail[1].JobBytes {
		t.Errorf("round 2 delta %d bytes vs full %d bytes: less than 2x saving",
			delta.RoundDetail[1].DeltaBytes, full.RoundDetail[1].JobBytes)
	}

	tab, err := RunDistributedWith(pre, DistributedConfig{Workers: 2, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Sections) != 2 {
		t.Fatalf("expected a per-round table section, got %d sections", len(tab.Sections))
	}
}
