// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV) against synthetic aligned networks: Table II
// (dataset statistics), Tables III and IV (method comparison across
// NP-ratios and sample-ratios), Figure 3 (convergence), Figure 4
// (scalability), Figure 5 (budget sensitivity), plus the ablations
// called out in DESIGN.md §5.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment artifact: a grid of formatted cells
// grouped into sections (one per metric), with one column per swept
// parameter value.
type Table struct {
	Title     string
	ColHeader string
	Cols      []string
	Sections  []Section
	// Notes are free-form footnote lines rendered after the last
	// section — run-level facts that belong to the artifact but fit no
	// column (e.g. the chaos injector's fault totals).
	Notes []string
}

// Section groups rows under a metric name (F1, Precision, ...).
type Section struct {
	Name string
	Rows []TableRow
}

// TableRow is one method's formatted results across the sweep.
type TableRow struct {
	Label string
	Cells []string
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	labelW := len(t.ColHeader)
	for _, s := range t.Sections {
		for _, r := range s.Rows {
			if len(r.Label) > labelW {
				labelW = len(r.Label)
			}
		}
	}
	cellW := 0
	for _, c := range t.Cols {
		if len(c) > cellW {
			cellW = len(c)
		}
	}
	for _, s := range t.Sections {
		for _, r := range s.Rows {
			for _, c := range r.Cells {
				if len(c) > cellW {
					cellW = len(c)
				}
			}
		}
	}
	line := func(label string, cells []string) {
		fmt.Fprintf(w, "  %-*s", labelW, label)
		for _, c := range cells {
			fmt.Fprintf(w, "  %*s", cellW, c)
		}
		fmt.Fprintln(w)
	}
	sep := strings.Repeat("-", 2+labelW+(cellW+2)*len(t.Cols))
	for _, s := range t.Sections {
		fmt.Fprintln(w, sep)
		fmt.Fprintf(w, "[%s]\n", s.Name)
		line(t.ColHeader, t.Cols)
		for _, r := range s.Rows {
			line(r.Label, r.Cells)
		}
	}
	fmt.Fprintln(w, sep)
	for _, n := range t.Notes {
		fmt.Fprintln(w, n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}
