package experiments

import (
	"fmt"
	"os"
	"time"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/core"
	"github.com/activeiter/activeiter/internal/datagen"
	"github.com/activeiter/activeiter/internal/distrib"
	"github.com/activeiter/activeiter/internal/eval"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/partition"
	"github.com/activeiter/activeiter/internal/schema"
	"github.com/activeiter/activeiter/internal/telemetry"
)

// DistributedPoint is one measured execution mode of the same K-shard
// alignment problem. Session modes ("<transport>/rounds-full",
// "<transport>/rounds-delta") add the multi-round cache columns and one
// RoundDetail entry per active-learning round.
type DistributedPoint struct {
	Mode       string // "in-process", "loopback", "subprocess", "<transport>/rounds-*"
	Partitions int
	Workers    int
	Rounds     int
	F1         float64
	Precision  float64
	Recall     float64
	Queries    int
	Rejected   int
	AlignTime  time.Duration
	// JobBytes is what the mode shipped per run (0 for in-process);
	// JobBytesFull is the same plan serialized without shard extraction.
	JobBytes     int64
	JobBytesFull int64
	// SeedBytes / SeedShips audit warm-counter seed shipping: the
	// one-time per-connection cost that lets every job drop its networks.
	SeedBytes int64
	SeedShips int
	// DeltaBytes / CacheHits / CacheMisses audit session delta shipping.
	DeltaBytes  int64
	CacheHits   int
	CacheMisses int
	Retries     int
	// Fallbacks counts shards that degraded to the in-process loopback
	// path — non-zero only when the transport misbehaved (see the chaos
	// mode). Hedges counts straggler hedge dispatches.
	Fallbacks int
	Hedges    int
	// Shards is the per-shard attempt audit (attempts, hedged, fallback)
	// straight from the run metrics; sessions accumulate one entry per
	// shard per round.
	Shards []distrib.ShardMetrics
	// Chaos holds the fault injector's totals for the chaos modes, nil
	// elsewhere.
	Chaos       *distrib.ChaosStats
	RoundDetail []DistributedRound
}

// DistributedRound is one session round's wire audit.
type DistributedRound struct {
	Round      int
	JobBytes   int64 // full-job frame bytes this round
	DeltaBytes int64 // JobRef frame bytes this round
	CacheHits  int
	Queries    int
	AlignTime  time.Duration
}

// DistributedConfig parameterizes RunDistributedPoints beyond the
// preset.
type DistributedConfig struct {
	// Workers caps concurrent shard execution (pipelines in-process,
	// worker connections distributed); ≤ 0 uses the preset's Workers
	// (minimum 1).
	Workers int
	// WorkerCmd, when non-empty, adds a subprocess-transport run
	// spawning this command (plus Args) per worker — typically a built
	// `activeiter` binary invoked with -worker.
	WorkerCmd  string
	WorkerArgs []string
	// Rounds > 1 adds the sticky-session modes: the budget splits across
	// this many retrain-after-labels rounds, run once with delta
	// shipping disabled (every round re-ships full jobs — the PR 3
	// cost model) and once with JobRef deltas to warm workers.
	Rounds int
	// ChaosSeed, when non-zero, adds a fault-injected loopback mode: the
	// same plan dispatched through a seeded ChaosTransport (refused
	// dials, mid-frame drops, byte corruption, worker crashes). The
	// alignment quality columns must match the healthy modes exactly —
	// the retries and fallbacks columns show what the fault-tolerance
	// layer absorbed to get there.
	ChaosSeed int64
	// Tracer, when non-nil, records coordinator/session shard spans for
	// every distributed mode (and, over the wire, the workers' spans) —
	// dump it with Tracer.WriteChrome after the run.
	Tracer *telemetry.Tracer
}

// RunDistributedPoints measures the same single-cell shard plan as
// RunScalabilityPoints executed three ways: in-process partition
// pipelines, distributed over the in-process loopback transport, and
// (when a worker command is configured) distributed over subprocess
// workers. All three must produce the same alignment — the point of the
// comparison is the transport and serialization overhead, and what
// shard extraction saves in bytes on the wire.
func RunDistributedPoints(pre Preset, cfg DistributedConfig) ([]DistributedPoint, error) {
	pair, err := datagen.Generate(pre.Data)
	if err != nil {
		return nil, err
	}
	base, err := newBaseCounter(pair)
	if err != nil {
		return nil, err
	}
	budget := 0
	if len(pre.Budgets) > 0 {
		budget = pre.Budgets[len(pre.Budgets)-1]
	}
	rng := newRunRNG(pre.Seed, pre.FixedTheta, 1300)
	neg, err := eval.SampleNegatives(pair, pre.FixedTheta*len(pair.Anchors), rng)
	if err != nil {
		return nil, err
	}
	splits, err := eval.KFoldSplits(pair.Anchors, neg, pre.Folds, pre.FixedGamma, rng)
	if err != nil {
		return nil, err
	}
	split := splits[0]
	trainPos := split.TrainPos
	var candidates []hetnet.Anchor
	candidates = append(candidates, split.TrainNeg...)
	candidates = append(candidates, split.TestPos...)
	candidates = append(candidates, split.TestNeg...)
	oracle := active.NewTruthOracle(pair)
	workers := cfg.Workers
	if workers <= 0 {
		workers = pre.Workers
	}
	if workers < 1 {
		workers = 1
	}
	// An explicit -partitions 1 means a genuine monolithic single-shard
	// plan (the '≤1 = monolithic' contract of the flag); only the unset
	// zero falls back to a 2-shard default.
	k := pre.Partitions
	if k <= 0 {
		k = 2
	}

	// Session modes mutate their plan (per-round rebudget + label
	// appends), so every mode gets a fresh plan; one cached planner keeps
	// re-planning cheap.
	var planner *partition.Planner
	newPlan := func() (*partition.Plan, error) {
		if k > 1 && len(trainPos) > 1 {
			if planner == nil {
				var err error
				if planner, err = partition.NewPlanner(base); err != nil {
					return nil, err
				}
			}
			return planner.Plan(trainPos, candidates, budget, partition.Config{K: k})
		}
		return partition.BuildPlan(base, trainPos, candidates, budget, partition.Config{K: k})
	}
	plan, err := newPlan()
	if err != nil {
		return nil, err
	}
	train := distrib.TrainConfig{FeatureSet: distrib.FeaturesFull, Strategy: distrib.StrategyConflict, Seed: pre.Seed}
	// Shipped bytes come from each mode's run metrics; only the
	// full-pair counterfactual needs pricing separately.
	jobFull, err := distrib.JobSizes(pair, plan, train, false)
	if err != nil {
		return nil, err
	}
	var fullTotal int64
	for _, n := range jobFull {
		fullTotal += n
	}

	score := func(res *partition.Result) (f1, prec, rec float64) {
		var conf eval.Confusion
		add := func(links []hetnet.Anchor, truth float64) {
			for _, l := range links {
				if res.WasQueried(l.I, l.J) {
					continue
				}
				lab, _ := res.Label(l.I, l.J)
				conf.Add(lab, truth)
			}
		}
		add(split.TestPos, 1)
		add(split.TestNeg, 0)
		return conf.F1(), conf.Precision(), conf.Recall()
	}

	var points []DistributedPoint

	// In-process reference: the PartitionedAligner path.
	var strat active.Strategy
	if budget > 0 {
		strat = active.Conflict{}
	}
	inproc, err := partition.Align(base, plan, partition.TrainOptions{
		Features: schema.StandardLibrary().All(),
		Core:     core.Config{Budget: budget, Strategy: strat, Seed: pre.Seed},
		Workers:  workers,
	}, oracle)
	if err != nil {
		return nil, fmt.Errorf("distributed: in-process reference: %w", err)
	}
	f1, prec, rec := score(inproc)
	points = append(points, DistributedPoint{
		Mode: "in-process", Partitions: len(plan.Parts), Workers: workers,
		F1: f1, Precision: prec, Recall: rec,
		Queries: inproc.QueryCount(), Rejected: inproc.Rejected,
		AlignTime: inproc.Elapsed, JobBytesFull: fullTotal,
	})

	runCoord := func(mode string, transport distrib.Transport, opts distrib.Options) error {
		coord := &distrib.Coordinator{Transport: transport, Opts: opts}
		res, metrics, err := coord.Run(pair, plan, oracle)
		if err != nil {
			return fmt.Errorf("distributed: %s: %w", mode, err)
		}
		f1, prec, rec := score(res)
		points = append(points, DistributedPoint{
			Mode: mode, Partitions: len(plan.Parts), Workers: workers,
			F1: f1, Precision: prec, Recall: rec,
			Queries: res.QueryCount(), Rejected: res.Rejected,
			AlignTime: res.Elapsed,
			JobBytes:  metrics.JobBytes, JobBytesFull: fullTotal,
			SeedBytes: metrics.SeedBytes, SeedShips: metrics.SeedShips,
			Retries: metrics.Retries, Fallbacks: metrics.Fallbacks,
			Hedges: metrics.Hedges, Shards: metrics.Shards,
		})
		return nil
	}
	// The base counter is already warm from planning; the distributed
	// modes export their worker seed from it rather than recounting.
	baseOpts := distrib.Options{Train: train, Workers: workers, Base: base, Tracer: cfg.Tracer}
	if err := runCoord("loopback", distrib.Loopback{}, baseOpts); err != nil {
		return nil, err
	}
	// Unseeded baseline: the v4 cost model — every job ships its
	// extracted sub-networks and every worker counts from scratch.
	noseed := baseOpts
	noseed.NoSeed = true
	if err := runCoord("loopback/noseed", distrib.Loopback{}, noseed); err != nil {
		return nil, err
	}
	if cfg.WorkerCmd != "" {
		tr := &distrib.Exec{Cmd: cfg.WorkerCmd, Args: cfg.WorkerArgs, Stderr: os.Stderr}
		if err := runCoord("subprocess", tr, baseOpts); err != nil {
			return nil, err
		}
	}
	if cfg.ChaosSeed != 0 {
		// Fault-inject the most realistic transport available: genuine
		// subprocess workers when a worker command is configured, the
		// in-process loopback otherwise.
		inner := distrib.Transport(distrib.Loopback{})
		mode := "loopback/chaos"
		if cfg.WorkerCmd != "" {
			inner = &distrib.Exec{Cmd: cfg.WorkerCmd, Args: cfg.WorkerArgs, Stderr: os.Stderr}
			mode = "subprocess/chaos"
		}
		chaos := &distrib.ChaosTransport{Inner: inner, Opts: distrib.ChaosOptions{
			Seed:       cfg.ChaosSeed,
			RefuseRate: 0.10, DropRate: 0.30, CorruptRate: 0.10, CrashRate: 0.10,
		}}
		chaosOpts := baseOpts
		chaosOpts.Retries = 4
		chaosOpts.ShardTimeout = 10 * time.Second
		if err := runCoord(mode, chaos, chaosOpts); err != nil {
			return nil, err
		}
		// The injector's totals ride on the point (tabulated as a table
		// note) rather than a stderr side channel.
		s := chaos.Stats()
		points[len(points)-1].Chaos = &s
	}

	// Sticky-session modes: the same problem as a multi-round active
	// loop, once re-shipping full jobs every round (what PR 3's
	// single-shot dispatch would cost per retrain) and once shipping
	// JobRef deltas to warm workers.
	runSession := func(mode string, transport distrib.Transport, deltaMax int) error {
		p, err := newPlan()
		if err != nil {
			return err
		}
		sess, err := distrib.NewSession(transport, pair, distrib.Options{
			Train: train, Workers: workers, DeltaMaxLabels: deltaMax, Base: base, Tracer: cfg.Tracer,
		})
		if err != nil {
			return err
		}
		defer sess.Close()
		point := DistributedPoint{
			Mode: mode, Partitions: len(p.Parts), Workers: workers,
			Rounds: cfg.Rounds, JobBytesFull: fullTotal,
		}
		var res *partition.Result
		start := time.Now()
		for r := 0; r < cfg.Rounds; r++ {
			p.Rebudget(partition.RoundBudget(budget, cfg.Rounds, r))
			t0 := time.Now()
			var m *distrib.Metrics
			res, m, err = sess.Run(p, oracle)
			if err != nil {
				return fmt.Errorf("distributed: %s round %d: %w", mode, r+1, err)
			}
			if r < cfg.Rounds-1 {
				p.AppendLabels(res.QueriedLabels())
			}
			point.RoundDetail = append(point.RoundDetail, DistributedRound{
				Round: r + 1, JobBytes: m.JobBytes, DeltaBytes: m.DeltaBytes,
				CacheHits: m.CacheHits, Queries: m.Queries, AlignTime: time.Since(t0),
			})
		}
		cum := sess.Metrics()
		point.F1, point.Precision, point.Recall = score(res)
		point.Queries = cum.Queries
		point.Rejected = res.Rejected
		point.AlignTime = time.Since(start)
		point.JobBytes = cum.JobBytes
		point.SeedBytes = cum.SeedBytes
		point.SeedShips = cum.SeedShips
		point.DeltaBytes = cum.DeltaBytes
		point.CacheHits = cum.CacheHits
		point.CacheMisses = cum.CacheMisses
		point.Retries = cum.Retries
		point.Fallbacks = cum.Fallbacks
		point.Hedges = cum.Hedges
		point.Shards = cum.Shards
		points = append(points, point)
		return nil
	}
	if cfg.Rounds > 1 {
		if err := runSession("loopback/rounds-full", distrib.Loopback{}, -1); err != nil {
			return nil, err
		}
		if err := runSession("loopback/rounds-delta", distrib.Loopback{}, 0); err != nil {
			return nil, err
		}
		if cfg.WorkerCmd != "" {
			tr := &distrib.Exec{Cmd: cfg.WorkerCmd, Args: cfg.WorkerArgs, Stderr: os.Stderr}
			if err := runSession("subprocess/rounds-delta", tr, 0); err != nil {
				return nil, err
			}
		}
	}
	return points, nil
}

// RunDistributedWith tabulates RunDistributedPoints for the CLI.
func RunDistributedWith(pre Preset, cfg DistributedConfig) (*Table, error) {
	points, err := RunDistributedPoints(pre, cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Distributed — shard execution modes (θ=%d, γ=%.0f%%, K=%d, workers=%d, preset %q)",
			pre.FixedTheta, pre.FixedGamma*100, points[0].Partitions, points[0].Workers, pre.Name),
		ColHeader: "mode",
		Cols:      []string{"F1", "Precision", "Recall", "queries", "rejected", "align", "job bytes", "seed bytes", "delta bytes", "cache hit/miss", "job bytes (full pair)", "attempts", "hedges", "retries", "fallbacks"},
	}
	sec := Section{Name: "distributed alignment"}
	for _, p := range points {
		jobBytes := "—"
		if p.JobBytes > 0 {
			jobBytes = fmt.Sprint(p.JobBytes)
		}
		seedBytes := "—"
		if p.SeedBytes > 0 {
			seedBytes = fmt.Sprintf("%d (%d ships)", p.SeedBytes, p.SeedShips)
		}
		deltaBytes, cache := "—", "—"
		if p.Rounds > 1 {
			deltaBytes = fmt.Sprint(p.DeltaBytes)
			cache = fmt.Sprintf("%d/%d", p.CacheHits, p.CacheMisses)
		}
		attempts := "—"
		if len(p.Shards) > 0 {
			n := 0
			for _, sm := range p.Shards {
				n += sm.Attempts
			}
			attempts = fmt.Sprint(n)
		}
		sec.Rows = append(sec.Rows, TableRow{Label: p.Mode, Cells: []string{
			fmt.Sprintf("%.4f", p.F1),
			fmt.Sprintf("%.4f", p.Precision),
			fmt.Sprintf("%.4f", p.Recall),
			fmt.Sprint(p.Queries),
			fmt.Sprint(p.Rejected),
			p.AlignTime.Round(time.Millisecond).String(),
			jobBytes,
			seedBytes,
			deltaBytes,
			cache,
			fmt.Sprint(p.JobBytesFull),
			attempts,
			fmt.Sprint(p.Hedges),
			fmt.Sprint(p.Retries),
			fmt.Sprint(p.Fallbacks),
		}})
		if p.Chaos != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("chaos: dials=%d refused=%d dropped=%d corrupted=%d crashed=%d (%s)",
				p.Chaos.Dials, p.Chaos.Refused, p.Chaos.Dropped, p.Chaos.Corrupted, p.Chaos.Crashed, p.Mode))
		}
	}
	t.Sections = []Section{sec}
	// Modes where the fault-tolerance layer actually worked get a
	// per-shard attempt breakdown. Labels use "#s<idx>" (no space) so the
	// summary rows stay uniquely matchable as "<mode> ".
	var shards Section
	for _, p := range points {
		if p.Rounds > 1 || p.Retries+p.Hedges+p.Fallbacks == 0 {
			continue
		}
		for _, sm := range p.Shards {
			yes := func(b bool) string {
				if b {
					return "yes"
				}
				return "—"
			}
			shards.Rows = append(shards.Rows, TableRow{
				Label: fmt.Sprintf("%s#s%d", p.Mode, sm.Shard),
				Cells: []string{
					"—", "—", "—", "—", "—", "—",
					fmt.Sprint(sm.JobBytes),
					"—", "—", "—", "—",
					fmt.Sprint(sm.Attempts),
					yes(sm.Hedged),
					"—",
					yes(sm.Fallback),
				},
			})
		}
	}
	if len(shards.Rows) > 0 {
		shards.Name = "per shard (attempts / hedges / fallbacks)"
		t.Sections = append(t.Sections, shards)
	}
	// Session modes get a per-round breakdown section: what each retrain
	// round actually shipped.
	var rounds Section
	for _, p := range points {
		for _, r := range p.RoundDetail {
			rounds.Rows = append(rounds.Rows, TableRow{
				Label: fmt.Sprintf("%s r%d", p.Mode, r.Round),
				Cells: []string{
					"—", "—", "—",
					fmt.Sprint(r.Queries),
					"—",
					r.AlignTime.Round(time.Millisecond).String(),
					fmt.Sprint(r.JobBytes),
					"—",
					fmt.Sprint(r.DeltaBytes),
					fmt.Sprint(r.CacheHits),
					"—", "—", "—", "—", "—",
				},
			})
		}
	}
	if len(rounds.Rows) > 0 {
		rounds.Name = "per round"
		t.Sections = append(t.Sections, rounds)
	}
	return t, nil
}

// RunDistributed is the parameterless runner used by `-exp all`:
// loopback and in-process modes on the preset's defaults.
func RunDistributed(pre Preset) (*Table, error) {
	return RunDistributedWith(pre, DistributedConfig{})
}
