package experiments

import (
	"fmt"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/core"
	"github.com/activeiter/activeiter/internal/datagen"
	"github.com/activeiter/activeiter/internal/eval"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/schema"
)

// RunOracleNoiseAblation measures ActiveIter's robustness to labeler
// error: the oracle flips each answer with probability p. The paper
// assumes a perfect oracle; this quantifies how fast the active-learning
// advantage decays when humans err.
func RunOracleNoiseAblation(pre Preset) (*Table, error) {
	pair, err := datagen.Generate(pre.Data)
	if err != nil {
		return nil, err
	}
	base, err := newBaseCounter(pair)
	if err != nil {
		return nil, err
	}
	ctx := newCellContext(base, pre.Seed)
	budget := 50
	if len(pre.Budgets) > 0 {
		budget = pre.Budgets[len(pre.Budgets)-1]
	}
	rng := newRunRNG(pre.Seed, pre.FixedTheta, 1100)
	neg, err := eval.SampleNegatives(pair, pre.FixedTheta*len(pair.Anchors), rng)
	if err != nil {
		return nil, err
	}
	splits, err := eval.KFoldSplits(pair.Anchors, neg, pre.Folds, pre.FixedGamma, rng)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Oracle-noise ablation — ActiveIter-%d with flip probability p (θ=%d, γ=%.0f%%, preset %q)",
			budget, pre.FixedTheta, pre.FixedGamma*100, pre.Name),
		ColHeader: "flip prob",
		Cols:      []string{"F1", "Precision", "Recall"},
	}
	sec := Section{Name: fmt.Sprintf("ActiveIter-%d", budget)}
	for _, p := range []float64{0, 0.1, 0.3} {
		var confs []eval.Confusion
		for _, split := range splits {
			fd, err := ctx.prepareFold(split)
			if err != nil {
				return nil, err
			}
			oracle := active.Oracle(active.NewTruthOracle(pair))
			if p > 0 {
				oracle = &active.NoisyOracle{Inner: oracle, FlipProb: p, Seed: pre.Seed}
			}
			res, err := core.Train(core.Problem{
				Links: fd.pool, X: fd.xFull, LabeledPos: fd.labeledPos, Oracle: oracle,
			}, core.Config{Budget: budget, Strategy: active.Conflict{}, Seed: pre.Seed})
			if err != nil {
				return nil, err
			}
			var conf eval.Confusion
			for k, idx := range fd.testIdx {
				l := fd.pool[idx]
				if res.WasQueried(l.I, l.J) {
					continue
				}
				conf.Add(res.Y[idx], fd.testTruth[k])
			}
			confs = append(confs, conf)
		}
		ms := eval.SummarizeConfusions(confs)
		sec.Rows = append(sec.Rows, TableRow{
			Label: fmt.Sprintf("p=%.1f", p),
			Cells: []string{ms.F1.String(), ms.Precision.String(), ms.Recall.String()},
		})
	}
	t.Sections = []Section{sec}
	return t, nil
}

// RunWordFeatureAblation measures whether the word attribute — present
// in the paper's schema but unused in its evaluation — adds signal: the
// standard 31-feature library vs the 58-feature extended library on a
// dataset generated with word activity.
func RunWordFeatureAblation(pre Preset) (*Table, error) {
	data := pre.Data
	if data.Words == 0 {
		data.Words = 120
		data.WordsPerPost = 2
	}
	pair, err := datagen.Generate(data)
	if err != nil {
		return nil, err
	}
	counter, err := metadiag.NewCounter(pair)
	if err != nil {
		return nil, err
	}
	rng := newRunRNG(pre.Seed, pre.FixedTheta, 1200)
	neg, err := eval.SampleNegatives(pair, pre.FixedTheta*len(pair.Anchors), rng)
	if err != nil {
		return nil, err
	}
	splits, err := eval.KFoldSplits(pair.Anchors, neg, pre.Folds, pre.FixedGamma, rng)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Word-feature ablation — Iter-MPMD, standard vs extended library (θ=%d, γ=%.0f%%, preset %q + words)",
			pre.FixedTheta, pre.FixedGamma*100, pre.Name),
		ColHeader: "library",
		Cols:      []string{"F1", "Precision", "Recall", "dim"},
	}
	sec := Section{Name: "Iter-MPMD"}
	variants := []struct {
		name string
		lib  schema.Library
	}{
		{"standard (31)", schema.StandardLibrary()},
		{"extended +words (58)", schema.ExtendedLibrary()},
	}
	for _, v := range variants {
		ext := metadiag.NewExtractor(counter, v.lib.All(), true)
		var confs []eval.Confusion
		for _, split := range splits {
			counter.SetAnchors(split.TrainPos)
			if err := ext.Recompute(); err != nil {
				return nil, err
			}
			pool := buildPool(split)
			x, err := ext.FeatureMatrix(pool.links)
			if err != nil {
				return nil, err
			}
			res, err := core.Train(core.Problem{Links: pool.links, X: x, LabeledPos: pool.labeledPos}, core.Config{Seed: pre.Seed})
			if err != nil {
				return nil, err
			}
			var conf eval.Confusion
			for k, idx := range pool.testIdx {
				conf.Add(res.Y[idx], pool.testTruth[k])
			}
			confs = append(confs, conf)
		}
		ms := eval.SummarizeConfusions(confs)
		sec.Rows = append(sec.Rows, TableRow{Label: v.name, Cells: []string{
			ms.F1.String(), ms.Precision.String(), ms.Recall.String(), fmt.Sprint(len(v.lib.All()) + 1),
		}})
	}
	t.Sections = []Section{sec}
	return t, nil
}

// RunStability re-runs the Table III fixed cell across several dataset
// seeds, quantifying how robust the method ordering is to the generated
// world — a reproduction-quality check absent from the paper.
func RunStability(pre Preset, seeds int) (*Table, error) {
	if seeds < 2 {
		seeds = 3
	}
	methods := StandardMethods()
	t := &Table{
		Title: fmt.Sprintf("Stability — F1 across %d dataset seeds (θ=%d, γ=%.0f%%, preset %q)",
			seeds, pre.FixedTheta, pre.FixedGamma*100, pre.Name),
		ColHeader: "method",
	}
	results := make([]map[string]eval.MetricSet, seeds)
	for s := 0; s < seeds; s++ {
		data := pre.Data
		data.Seed = pre.Data.Seed + int64(s)*101
		pair, err := datagen.Generate(data)
		if err != nil {
			return nil, err
		}
		base, err := newBaseCounter(pair)
		if err != nil {
			return nil, err
		}
		planner, err := sweepPlanner(base, pre)
		if err != nil {
			return nil, err
		}
		cell, err := runCell(base, planner, methods, pre.FixedTheta, pre.FixedGamma, pre.Folds, pre.Seed, pre.Partitions)
		if err != nil {
			return nil, err
		}
		results[s] = cell
		t.Cols = append(t.Cols, fmt.Sprintf("seed+%d", s*101))
	}
	sec := Section{Name: "F1"}
	for _, m := range methods {
		row := TableRow{Label: m.Name}
		for s := 0; s < seeds; s++ {
			row.Cells = append(row.Cells, results[s][m.Name].F1.String())
		}
		sec.Rows = append(sec.Rows, row)
	}
	t.Sections = []Section{sec}
	return t, nil
}
