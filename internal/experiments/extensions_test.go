package experiments

import (
	"strings"
	"testing"
)

func TestRunOracleNoiseAblation(t *testing.T) {
	tab, err := RunOracleNoiseAblation(TinyPreset())
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	for _, want := range []string{"p=0.0", "p=0.1", "p=0.3"} {
		if !strings.Contains(s, want) {
			t.Errorf("noise ablation missing %q:\n%s", want, s)
		}
	}
	if len(tab.Sections[0].Rows) != 3 {
		t.Errorf("rows = %d", len(tab.Sections[0].Rows))
	}
}

func TestRunWordFeatureAblation(t *testing.T) {
	tab, err := RunWordFeatureAblation(TinyPreset())
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	if !strings.Contains(s, "standard (31)") || !strings.Contains(s, "extended +words (58)") {
		t.Errorf("word ablation rows missing:\n%s", s)
	}
}

func TestRunStability(t *testing.T) {
	pre := TinyPreset()
	tab, err := RunStability(pre, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Cols) != 2 {
		t.Errorf("cols = %d, want 2 seeds", len(tab.Cols))
	}
	if len(tab.Sections[0].Rows) != 6 {
		t.Errorf("rows = %d, want 6 methods", len(tab.Sections[0].Rows))
	}
	// Clamping: seeds < 2 becomes 3.
	tab3, err := RunStability(pre, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab3.Cols) != 3 {
		t.Errorf("clamped cols = %d, want 3", len(tab3.Cols))
	}
}

func TestRunUnsupervisedComparison(t *testing.T) {
	tab, err := RunUnsupervisedComparison(TinyPreset())
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	for _, want := range []string{"IsoRank", "Iter-MPMD", "ActiveIter-50"} {
		if !strings.Contains(s, want) {
			t.Errorf("unsupervised comparison missing %q:\n%s", want, s)
		}
	}
	if len(tab.Sections[0].Rows) != 3 {
		t.Errorf("rows = %d, want 3", len(tab.Sections[0].Rows))
	}
}
