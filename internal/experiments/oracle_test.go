package experiments

import (
	"testing"
)

// The oracle-noise matrix's property hook: with p=0 nothing flips, so
// every labeler-pool scenario's majority verdict equals ground truth
// and its F1 (and TPR/FPR) must match the clean-oracle baseline
// exactly — replication must not perturb results. CI asserts the same
// on the small preset via the rendered table.
func TestOracleNoiseMatrixZeroNoiseMatchesClean(t *testing.T) {
	tab, err := RunOracleNoiseMatrix(TinyPreset())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Sections) != 6 {
		t.Fatalf("%d sections, want clean + 5 scenarios", len(tab.Sections))
	}
	baseline := tab.Sections[0]
	if baseline.Name != "clean oracle" || len(baseline.Rows) != 1 {
		t.Fatalf("unexpected baseline section %q with %d rows", baseline.Name, len(baseline.Rows))
	}
	clean := baseline.Rows[0].Cells
	for _, sec := range tab.Sections[1:] {
		if len(sec.Rows) != len(oracleNoiseRates) {
			t.Fatalf("section %q has %d rows for %d noise rates", sec.Name, len(sec.Rows), len(oracleNoiseRates))
		}
		zero := sec.Rows[0]
		if zero.Label != "p=0.0" {
			t.Fatalf("section %q first row is %q, want p=0.0", sec.Name, zero.Label)
		}
		// F1, TPR, FPR — the metric cells — must be bit-identical to the
		// clean baseline at p=0.
		for c := 0; c < 3; c++ {
			if zero.Cells[c] != clean[c] {
				t.Errorf("section %q p=0 %s = %s, clean oracle %s",
					sec.Name, tab.Cols[c], zero.Cells[c], clean[c])
			}
		}
	}
}

// The matrix's adversary scenario must surface its always-lying member
// through the distrust column, and noisy pools must feed the
// contradiction ledger at high p.
func TestOracleNoiseMatrixLedgerColumns(t *testing.T) {
	tab, err := RunOracleNoiseMatrix(TinyPreset())
	if err != nil {
		t.Fatal(err)
	}
	var adversarySec *Section
	for i := range tab.Sections {
		if tab.Sections[i].Name == "4 noisy + adversary R=5" {
			adversarySec = &tab.Sections[i]
		}
	}
	if adversarySec == nil {
		t.Fatal("adversary scenario missing from the matrix")
	}
	for _, row := range adversarySec.Rows {
		if row.Cells[4] == "0" {
			t.Errorf("adversary scenario %s row reports no distrusted labelers", row.Label)
		}
	}
}
