package experiments

import (
	"strings"
	"testing"
)

func TestRunTable2(t *testing.T) {
	tab, err := RunTable2(TinyPreset())
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	for _, want := range []string{"users", "follow links", "anchor links"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table II missing %q:\n%s", want, s)
		}
	}
}

func TestRunTable3TinyShape(t *testing.T) {
	pre := TinyPreset()
	tab, err := RunTable3(pre)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Sections) != 4 {
		t.Fatalf("sections = %d, want 4 metrics", len(tab.Sections))
	}
	for _, sec := range tab.Sections {
		if len(sec.Rows) != 6 {
			t.Errorf("section %s has %d rows, want 6 methods", sec.Name, len(sec.Rows))
		}
		for _, row := range sec.Rows {
			if len(row.Cells) != len(pre.ThetaValues) {
				t.Errorf("row %s has %d cells, want %d", row.Label, len(row.Cells), len(pre.ThetaValues))
			}
			for _, c := range row.Cells {
				if !strings.Contains(c, "±") {
					t.Errorf("cell %q not in mean±std form", c)
				}
			}
		}
	}
}

// TestTable3ShapeProperties checks the qualitative relationships the
// paper reports, on the tiny preset: the PU family beats the SVM family
// on F1, and meta-diagram features beat path-only features for the SVM.
func TestTable3ShapeProperties(t *testing.T) {
	pre := TinyPreset()
	cells := [][2]float64{{float64(pre.FixedTheta), pre.FixedGamma}}
	res, err := sweepCells(pre, cells)
	if err != nil {
		t.Fatal(err)
	}
	cell := res[0]
	if len(sortedMethodNames(cell)) != 6 {
		t.Fatalf("methods = %v", sortedMethodNames(cell))
	}
	iterF1 := cell["Iter-MPMD"].F1.Mean
	svmMPMD := cell["SVM-MPMD"].F1.Mean
	svmMP := cell["SVM-MP"].F1.Mean
	if iterF1 <= svmMPMD {
		t.Errorf("Iter-MPMD F1 %v should beat SVM-MPMD %v", iterF1, svmMPMD)
	}
	if svmMPMD < svmMP {
		t.Errorf("SVM-MPMD F1 %v should be ≥ SVM-MP %v", svmMPMD, svmMP)
	}
	activeF1 := cell["ActiveIter-100"].F1.Mean
	if activeF1 < iterF1-0.05 {
		t.Errorf("ActiveIter-100 F1 %v should not trail Iter-MPMD %v", activeF1, iterF1)
	}
}

func TestRunFig3Convergence(t *testing.T) {
	series, tab, err := RunFig3(TinyPreset())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) == 0 {
		t.Fatal("no series")
	}
	for _, s := range series {
		if len(s.DeltaY) == 0 {
			t.Fatalf("θ=%d: empty trace", s.Theta)
		}
		if last := s.DeltaY[len(s.DeltaY)-1]; last != 0 {
			t.Errorf("θ=%d: did not converge, Δy=%v", s.Theta, last)
		}
	}
	if !strings.Contains(tab.String(), "iter1") {
		t.Error("figure table missing iteration columns")
	}
}

func TestRunFig4Scalability(t *testing.T) {
	pre := TinyPreset()
	points, tab, err := RunFig4(pre)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*len(pre.ThetaValues) {
		t.Errorf("points = %d, want %d", len(points), 2*len(pre.ThetaValues))
	}
	if !strings.Contains(tab.String(), "ActiveIter-50") {
		t.Error("figure table missing method rows")
	}
}

func TestRunFig5Budgets(t *testing.T) {
	pre := TinyPreset()
	tab, err := RunFig5(pre)
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	for _, want := range []string{"ActiveIter", "ActiveIter-Rand", "Iter-MPMD"} {
		if !strings.Contains(s, want) {
			t.Errorf("Figure 5 missing %q", want)
		}
	}
	if len(tab.Cols) != len(pre.Budgets) {
		t.Errorf("cols = %d, want %d budgets", len(tab.Cols), len(pre.Budgets))
	}
}

func TestRunFeatureAblation(t *testing.T) {
	tab, err := RunFeatureAblation(TinyPreset())
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	if !strings.Contains(s, "paths only") || !strings.Contains(s, "full (MPMD)") {
		t.Errorf("ablation rows missing:\n%s", s)
	}
	if len(tab.Sections[0].Rows) != 5 {
		t.Errorf("rows = %d, want 5 variants", len(tab.Sections[0].Rows))
	}
}

func TestRunQueryAblation(t *testing.T) {
	tab, err := RunQueryAblation(TinyPreset())
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	for _, want := range []string{"conflict", "uncertainty", "random"} {
		if !strings.Contains(s, want) {
			t.Errorf("query ablation missing %q", want)
		}
	}
}

func TestRunMatchingAblation(t *testing.T) {
	tab, err := RunMatchingAblation(TinyPreset())
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	if !strings.Contains(s, "greedy") || !strings.Contains(s, "hungarian") {
		t.Errorf("matching ablation rows missing:\n%s", s)
	}
}

func TestPresetsSane(t *testing.T) {
	for _, pre := range []Preset{TinyPreset(), SmallPreset(), PaperPreset()} {
		if err := pre.Data.Validate(); err != nil {
			t.Errorf("%s: %v", pre.Name, err)
		}
		if pre.Folds < 2 || len(pre.ThetaValues) == 0 || len(pre.GammaValues) == 0 {
			t.Errorf("%s: incomplete preset", pre.Name)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:     "demo",
		ColHeader: "m",
		Cols:      []string{"a", "b"},
		Sections: []Section{{
			Name: "F1",
			Rows: []TableRow{{Label: "x", Cells: []string{"1", "2"}}},
		}},
	}
	s := tab.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "[F1]") {
		t.Errorf("rendering wrong:\n%s", s)
	}
}
