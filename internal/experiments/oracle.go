package experiments

import (
	"fmt"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/core"
	"github.com/activeiter/activeiter/internal/datagen"
	"github.com/activeiter/activeiter/internal/eval"
	"github.com/activeiter/activeiter/internal/oracle"
)

// oracleScenario is one labeler-pool configuration of the noise matrix;
// cfg materializes it at a given flip probability.
type oracleScenario struct {
	name string
	cfg  func(p float64, seed int64) oracle.Config
}

// oracleNoiseScenarios spans the pool shapes the matrix compares: a
// lone noisy labeler (the old ablation, now through the panel), pure
// replication at R=3 and R=5, and R=5 pools carrying an always-lying
// adversary or a two-member colluding bloc alongside the flippers.
func oracleNoiseScenarios() []oracleScenario {
	return []oracleScenario{
		{"single noisy R=1", func(p float64, seed int64) oracle.Config {
			return oracle.Config{Noisy: 1, FlipProb: p, Seed: seed}
		}},
		{"panel 3 noisy R=3", func(p float64, seed int64) oracle.Config {
			return oracle.Config{Noisy: 3, FlipProb: p, Seed: seed}
		}},
		{"panel 5 noisy R=5", func(p float64, seed int64) oracle.Config {
			return oracle.Config{Noisy: 5, FlipProb: p, Seed: seed}
		}},
		{"4 noisy + adversary R=5", func(p float64, seed int64) oracle.Config {
			return oracle.Config{Noisy: 4, Adversarial: 1, FlipProb: p, Seed: seed}
		}},
		{"3 noisy + 2 colluders R=5", func(p float64, seed int64) oracle.Config {
			return oracle.Config{Noisy: 3, Colluding: 2, FlipProb: p, Seed: seed}
		}},
	}
}

// oracleNoiseRates is the flip-probability axis of the matrix. The p=0
// rows are the property hook: with nothing to flip, every scenario's
// majority verdict equals ground truth, so their F1 must match the
// clean-oracle baseline exactly (CI asserts this).
var oracleNoiseRates = []float64{0, 0.1, 0.2, 0.3}

// RunOracleNoiseMatrix generalizes the oracle-noise ablation into the
// full unreliable-labeler matrix: for each labeler-pool scenario
// (replication factor, adversaries, colluders) and each flip
// probability p, train ActiveIter against a fresh labeler panel and
// report F1/TPR/FPR on the untouched test links plus the panel's
// ledger totals (one-to-one contradictions flagged, labelers
// distrusted) summed across folds.
func RunOracleNoiseMatrix(pre Preset) (*Table, error) {
	pair, err := datagen.Generate(pre.Data)
	if err != nil {
		return nil, err
	}
	base, err := newBaseCounter(pair)
	if err != nil {
		return nil, err
	}
	ctx := newCellContext(base, pre.Seed)
	budget := 50
	if len(pre.Budgets) > 0 {
		budget = pre.Budgets[len(pre.Budgets)-1]
	}
	rng := newRunRNG(pre.Seed, pre.FixedTheta, 1100)
	neg, err := eval.SampleNegatives(pair, pre.FixedTheta*len(pair.Anchors), rng)
	if err != nil {
		return nil, err
	}
	splits, err := eval.KFoldSplits(pair.Anchors, neg, pre.Folds, pre.FixedGamma, rng)
	if err != nil {
		return nil, err
	}
	// Fold preparation is scenario-independent; do it once. Each
	// prepareFold call returns fresh matrices, so the slices stay valid
	// after the context moves to the next fold.
	folds := make([]*foldData, len(splits))
	for i, split := range splits {
		if folds[i], err = ctx.prepareFold(split); err != nil {
			return nil, err
		}
	}
	truth := active.NewTruthOracle(pair)
	train := func(fd *foldData, o active.Oracle) (eval.Confusion, error) {
		res, err := core.Train(core.Problem{
			Links: fd.pool, X: fd.xFull, LabeledPos: fd.labeledPos, Oracle: o,
		}, core.Config{Budget: budget, Strategy: active.Conflict{}, Seed: pre.Seed})
		if err != nil {
			return eval.Confusion{}, err
		}
		var conf eval.Confusion
		for k, idx := range fd.testIdx {
			l := fd.pool[idx]
			if res.WasQueried(l.I, l.J) {
				continue // queried labels are oracle-given: excluded
			}
			conf.Add(res.Y[idx], fd.testTruth[k])
		}
		return conf, nil
	}
	cells := func(confs []eval.Confusion) []string {
		f1 := make([]float64, len(confs))
		tpr := make([]float64, len(confs))
		fpr := make([]float64, len(confs))
		for i, c := range confs {
			f1[i], tpr[i], fpr[i] = c.F1(), c.TPR(), c.FPR()
		}
		return []string{
			eval.Summarize(f1).String(),
			eval.Summarize(tpr).String(),
			eval.Summarize(fpr).String(),
		}
	}

	t := &Table{
		Title: fmt.Sprintf("Oracle-noise matrix — ActiveIter-%d vs labeler pools with flip probability p (θ=%d, γ=%.0f%%, preset %q)",
			budget, pre.FixedTheta, pre.FixedGamma*100, pre.Name),
		ColHeader: "flip prob",
		Cols:      []string{"F1", "TPR", "FPR", "contr", "distr"},
	}

	// Baseline: the perfect oracle the paper assumes, no panel in between.
	baseline := Section{Name: "clean oracle"}
	var cleanConfs []eval.Confusion
	for _, fd := range folds {
		conf, err := train(fd, truth)
		if err != nil {
			return nil, err
		}
		cleanConfs = append(cleanConfs, conf)
	}
	baseline.Rows = append(baseline.Rows, TableRow{
		Label: "clean", Cells: append(cells(cleanConfs), "-", "-"),
	})
	t.Sections = append(t.Sections, baseline)

	for _, sc := range oracleNoiseScenarios() {
		sec := Section{Name: sc.name}
		for _, p := range oracleNoiseRates {
			var confs []eval.Confusion
			contradictions, distrusted := 0, 0
			for _, fd := range folds {
				// A fresh panel per fold: ledgers audit one training run.
				panel, err := sc.cfg(p, pre.Seed).Build(truth)
				if err != nil {
					return nil, err
				}
				conf, err := train(fd, panel)
				if err != nil {
					return nil, err
				}
				confs = append(confs, conf)
				rep := panel.Report()
				contradictions += rep.Contradictions
				distrusted += len(rep.Distrusted)
			}
			sec.Rows = append(sec.Rows, TableRow{
				Label: fmt.Sprintf("p=%.1f", p),
				Cells: append(cells(confs), fmt.Sprint(contradictions), fmt.Sprint(distrusted)),
			})
		}
		t.Sections = append(t.Sections, sec)
	}
	return t, nil
}
