package experiments

import (
	"fmt"
	"time"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/core"
	"github.com/activeiter/activeiter/internal/datagen"
	"github.com/activeiter/activeiter/internal/eval"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/partition"
	"github.com/activeiter/activeiter/internal/schema"
)

// ScalabilityPoint is one measured configuration of the partitioned
// alignment pipeline (K=1 is the monolithic reference).
type ScalabilityPoint struct {
	Partitions int
	Workers    int
	Overlapped int
	Rejected   int
	Queries    int
	F1         float64
	Precision  float64
	Recall     float64
	PlanTime   time.Duration
	AlignTime  time.Duration
}

// RunScalabilityPoints measures the partitioned pipeline against the
// monolithic one on a single protocol cell of the preset: one fold at
// (FixedTheta, FixedGamma), Iter-MPMD plus the preset's largest query
// budget, across the given partition counts (a leading 1 is the
// monolithic reference — the K=1 plan runs the identical training
// loop). Workers come from the preset, so `-workers 4 -partitions 4`
// measures genuine shard parallelism.
func RunScalabilityPoints(pre Preset, ks []int) ([]ScalabilityPoint, error) {
	pair, err := datagen.Generate(pre.Data)
	if err != nil {
		return nil, err
	}
	base, err := newBaseCounter(pair)
	if err != nil {
		return nil, err
	}
	budget := 0
	if len(pre.Budgets) > 0 {
		budget = pre.Budgets[len(pre.Budgets)-1]
	}
	rng := newRunRNG(pre.Seed, pre.FixedTheta, 1300)
	neg, err := eval.SampleNegatives(pair, pre.FixedTheta*len(pair.Anchors), rng)
	if err != nil {
		return nil, err
	}
	splits, err := eval.KFoldSplits(pair.Anchors, neg, pre.Folds, pre.FixedGamma, rng)
	if err != nil {
		return nil, err
	}
	split := splits[0]
	trainPos := split.TrainPos
	var candidates []hetnet.Anchor
	candidates = append(candidates, split.TrainNeg...)
	candidates = append(candidates, split.TestPos...)
	candidates = append(candidates, split.TestNeg...)
	oracle := active.NewTruthOracle(pair)
	// Preset.Workers documents 0 as serial; partition.Align maps ≤0 to
	// GOMAXPROCS, so resolve the preset convention before handing over.
	workers := pre.Workers
	if workers < 1 {
		workers = 1
	}

	// One planner across every K: the first Plan call pays for the
	// fold-independent inputs (graphs, propagation), the rest reuse them
	// — so per-K plan times reflect the marginal sharding cost.
	planner, err := partition.NewPlanner(base)
	if err != nil {
		return nil, err
	}
	var points []ScalabilityPoint
	for _, k := range ks {
		t0 := time.Now()
		plan, err := planner.Plan(trainPos, candidates, budget, partition.Config{K: k})
		if err != nil {
			return nil, fmt.Errorf("scalability K=%d: %w", k, err)
		}
		planTime := time.Since(t0)
		var strat active.Strategy
		if budget > 0 {
			strat = active.Conflict{}
		}
		res, err := partition.Align(base, plan, partition.TrainOptions{
			Features: schema.StandardLibrary().All(),
			Core:     core.Config{Budget: budget, Strategy: strat, Seed: pre.Seed},
			Workers:  workers,
		}, oracle)
		if err != nil {
			return nil, fmt.Errorf("scalability K=%d: %w", k, err)
		}
		var conf eval.Confusion
		score := func(links []hetnet.Anchor, truth float64) {
			for _, l := range links {
				if res.WasQueried(l.I, l.J) {
					continue
				}
				lab, _ := res.Label(l.I, l.J)
				conf.Add(lab, truth)
			}
		}
		score(split.TestPos, 1)
		score(split.TestNeg, 0)
		points = append(points, ScalabilityPoint{
			Partitions: len(plan.Parts),
			Workers:    workers,
			Overlapped: plan.Overlapped,
			Rejected:   res.Rejected,
			Queries:    res.QueryCount(),
			F1:         conf.F1(),
			Precision:  conf.Precision(),
			Recall:     conf.Recall(),
			PlanTime:   planTime,
			AlignTime:  res.Elapsed,
		})
	}
	return points, nil
}

// RunScalability tabulates RunScalabilityPoints for the CLI: monolithic
// K=1 against the preset's partition count (default sweep 2/4/8).
func RunScalability(pre Preset) (*Table, error) {
	ks := []int{1, 2, 4, 8}
	if pre.Partitions > 1 {
		ks = []int{1, pre.Partitions}
	}
	points, err := RunScalabilityPoints(pre, ks)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Scalability — partitioned vs monolithic alignment (θ=%d, γ=%.0f%%, workers=%d, preset %q)",
			pre.FixedTheta, pre.FixedGamma*100, pre.Workers, pre.Name),
		ColHeader: "configuration",
		Cols:      []string{"F1", "Precision", "Recall", "queries", "overlap", "rejected", "plan", "align", "speedup"},
	}
	sec := Section{Name: "partitioned alignment"}
	var monoAlign time.Duration
	for i, p := range points {
		if i == 0 {
			monoAlign = p.AlignTime
		}
		label := fmt.Sprintf("K=%d", p.Partitions)
		if p.Partitions == 1 {
			label = "monolithic (K=1)"
		}
		speedup := "—"
		if p.Partitions > 1 && p.AlignTime > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(monoAlign)/float64(p.AlignTime))
		}
		sec.Rows = append(sec.Rows, TableRow{Label: label, Cells: []string{
			fmt.Sprintf("%.4f", p.F1),
			fmt.Sprintf("%.4f", p.Precision),
			fmt.Sprintf("%.4f", p.Recall),
			fmt.Sprint(p.Queries),
			fmt.Sprint(p.Overlapped),
			fmt.Sprint(p.Rejected),
			p.PlanTime.Round(time.Millisecond).String(),
			p.AlignTime.Round(time.Millisecond).String(),
			speedup,
		}})
	}
	t.Sections = []Section{sec}
	return t, nil
}
