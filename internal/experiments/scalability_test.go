package experiments

import (
	"strings"
	"testing"
)

// The scalability experiment must produce one row per configuration
// with a monolithic K=1 reference first.
func TestRunScalabilityTiny(t *testing.T) {
	pre := TinyPreset()
	pre.Partitions = 2
	tab, err := RunScalability(pre)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Sections) != 1 || len(tab.Sections[0].Rows) != 2 {
		t.Fatalf("unexpected table shape: %+v", tab)
	}
	if !strings.Contains(tab.Sections[0].Rows[0].Label, "monolithic") {
		t.Errorf("first row %q is not the monolithic reference", tab.Sections[0].Rows[0].Label)
	}
	if got := tab.Sections[0].Rows[1].Label; got != "K=2" {
		t.Errorf("second row label %q, want K=2", got)
	}
}

// RunScalabilityPoints at K=1 must agree with itself across calls
// (deterministic protocol) and report zero overlap for the monolithic
// reference.
func TestScalabilityPointsDeterministic(t *testing.T) {
	pre := TinyPreset()
	a, err := RunScalabilityPoints(pre, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScalabilityPoints(pre, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if a[0].F1 != b[0].F1 || a[0].Queries != b[0].Queries {
		t.Errorf("non-deterministic scalability point: %+v vs %+v", a[0], b[0])
	}
	if a[0].Overlapped != 0 || a[0].Rejected != 0 {
		t.Errorf("monolithic point reports overlap %d / rejected %d", a[0].Overlapped, a[0].Rejected)
	}
}

// The partitioned PU path through runCell must work for a full
// experiment (the `-partitions` CLI route) and keep the standard table
// shape.
func TestTable3PartitionedPath(t *testing.T) {
	pre := TinyPreset()
	pre.Partitions = 2
	tab, err := RunTable3(pre)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Sections) == 0 || len(tab.Sections[0].Rows) != len(StandardMethods()) {
		t.Fatalf("unexpected table shape with partitions: %+v", tab)
	}
}
