package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/datagen"
	"github.com/activeiter/activeiter/internal/eval"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/partition"
)

// RunTable2 regenerates Table II: the dataset statistics of the
// generated pair next to the paper's crawl figures for orientation.
func RunTable2(pre Preset) (*Table, error) {
	pair, err := datagen.Generate(pre.Data)
	if err != nil {
		return nil, err
	}
	s1, s2 := pair.G1.Stats(), pair.G2.Stats()
	row := func(label string, v1, v2 int) TableRow {
		return TableRow{Label: label, Cells: []string{fmt.Sprint(v1), fmt.Sprint(v2)}}
	}
	t := &Table{
		Title:     fmt.Sprintf("Table II — dataset statistics (preset %q; paper crawl: 5,223/5,392 users, 164,920/76,972 follow links, 3,282 anchors)", pre.Name),
		ColHeader: "property",
		Cols:      []string{"network-1", "network-2"},
		Sections: []Section{{
			Name: "counts",
			Rows: []TableRow{
				row("users", s1.NodeCount[hetnet.User], s2.NodeCount[hetnet.User]),
				row("posts", s1.NodeCount[hetnet.Post], s2.NodeCount[hetnet.Post]),
				row("locations", s1.NodeCount[hetnet.Location], s2.NodeCount[hetnet.Location]),
				row("timestamps", s1.NodeCount[hetnet.Timestamp], s2.NodeCount[hetnet.Timestamp]),
				row("follow links", s1.LinkCount[hetnet.Follow], s2.LinkCount[hetnet.Follow]),
				row("write links", s1.LinkCount[hetnet.Write], s2.LinkCount[hetnet.Write]),
				{Label: "anchor links", Cells: []string{fmt.Sprint(len(pair.Anchors)), ""}},
			},
		}},
	}
	return t, nil
}

// sweepCells evaluates all standard methods over a list of (θ, γ) cells
// in parallel and returns per-cell method metrics, indexed like cells.
func sweepCells(pre Preset, cells [][2]float64) ([]map[string]eval.MetricSet, error) {
	pair, err := datagen.Generate(pre.Data)
	if err != nil {
		return nil, err
	}
	base, err := newBaseCounter(pair)
	if err != nil {
		return nil, err
	}
	methods := StandardMethods()
	planner, err := sweepPlanner(base, pre)
	if err != nil {
		return nil, err
	}
	results := make([]map[string]eval.MetricSet, len(cells))
	errs := make([]error, len(cells))
	workers := pre.Workers
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, cell := range cells {
		wg.Add(1)
		go func(i int, theta int, gamma float64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = runCell(base, planner, methods, theta, gamma, pre.Folds, pre.Seed, pre.Partitions)
		}(i, int(cell[0]), cell[1])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// buildMethodTable formats sweep results in the paper's layout: one
// section per metric, one row per method, one column per swept value.
func buildMethodTable(title, colHeader string, cols []string, cellResults []map[string]eval.MetricSet) *Table {
	t := &Table{Title: title, ColHeader: colHeader, Cols: cols}
	for _, metric := range eval.AllMetrics {
		sec := Section{Name: string(metric)}
		for _, m := range StandardMethods() {
			row := TableRow{Label: m.Name}
			for _, cell := range cellResults {
				row.Cells = append(row.Cells, cell[m.Name].Get(metric).String())
			}
			sec.Rows = append(sec.Rows, row)
		}
		t.Sections = append(t.Sections, sec)
	}
	return t
}

// RunTable3 regenerates Table III: all methods across the NP-ratio sweep
// at fixed sample-ratio γ.
func RunTable3(pre Preset) (*Table, error) {
	cells := make([][2]float64, len(pre.ThetaValues))
	cols := make([]string, len(pre.ThetaValues))
	for i, th := range pre.ThetaValues {
		cells[i] = [2]float64{float64(th), pre.FixedGamma}
		cols[i] = fmt.Sprintf("θ=%d", th)
	}
	res, err := sweepCells(pre, cells)
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("Table III — performance vs NP-ratio (γ=%.0f%%, %d folds, preset %q)",
		pre.FixedGamma*100, pre.Folds, pre.Name)
	return buildMethodTable(title, "method", cols, res), nil
}

// RunTable4 regenerates Table IV: all methods across the sample-ratio
// sweep at fixed NP-ratio θ.
func RunTable4(pre Preset) (*Table, error) {
	cells := make([][2]float64, len(pre.GammaValues))
	cols := make([]string, len(pre.GammaValues))
	for i, g := range pre.GammaValues {
		cells[i] = [2]float64{float64(pre.FixedTheta), g}
		cols[i] = fmt.Sprintf("γ=%.0f%%", g*100)
	}
	res, err := sweepCells(pre, cells)
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("Table IV — performance vs sample-ratio (θ=%d, %d folds, preset %q)",
		pre.FixedTheta, pre.Folds, pre.Name)
	return buildMethodTable(title, "method", cols, res), nil
}

// ConvergenceSeries is one Figure 3 line: Δy per internal iteration.
type ConvergenceSeries struct {
	Theta  int
	DeltaY []float64
}

// RunFig3 regenerates Figure 3: the convergence of the external
// iteration step (1) at γ=100% for several NP-ratios.
func RunFig3(pre Preset) ([]ConvergenceSeries, *Table, error) {
	pair, err := datagen.Generate(pre.Data)
	if err != nil {
		return nil, nil, err
	}
	base, err := newBaseCounter(pair)
	if err != nil {
		return nil, nil, err
	}
	thetas := fig3Thetas(pre)
	var series []ConvergenceSeries
	for _, theta := range thetas {
		ctx := newCellContext(base, pre.Seed)
		rng := newRunRNG(pre.Seed, theta, 100)
		neg, err := eval.SampleNegatives(pair, theta*len(pair.Anchors), rng)
		if err != nil {
			return nil, nil, err
		}
		splits, err := eval.KFoldSplits(pair.Anchors, neg, pre.Folds, 1.0, rng)
		if err != nil {
			return nil, nil, err
		}
		fd, err := ctx.prepareFold(splits[0])
		if err != nil {
			return nil, nil, err
		}
		_, res, _, err := ctx.runMethod(Method{Name: "Iter-MPMD", Kind: KindPU, Features: MPMD}, fd, pre.Seed)
		if err != nil {
			return nil, nil, err
		}
		series = append(series, ConvergenceSeries{Theta: theta, DeltaY: res.FirstRoundDeltas()})
	}
	// Tabulate: rows = NP-ratio, columns = iteration.
	maxLen := 0
	for _, s := range series {
		if len(s.DeltaY) > maxLen {
			maxLen = len(s.DeltaY)
		}
	}
	t := &Table{
		Title:     fmt.Sprintf("Figure 3 — convergence Δy = ‖yᵢ−yᵢ₋₁‖₁ per iteration (γ=100%%, preset %q)", pre.Name),
		ColHeader: "NP-ratio",
		Cols:      make([]string, maxLen),
	}
	for i := 0; i < maxLen; i++ {
		t.Cols[i] = fmt.Sprintf("iter%d", i+1)
	}
	sec := Section{Name: "Δy"}
	for _, s := range series {
		row := TableRow{Label: fmt.Sprintf("θ=%d", s.Theta)}
		for i := 0; i < maxLen; i++ {
			if i < len(s.DeltaY) {
				row.Cells = append(row.Cells, fmt.Sprintf("%.0f", s.DeltaY[i]))
			} else {
				row.Cells = append(row.Cells, "")
			}
		}
		sec.Rows = append(sec.Rows, row)
	}
	t.Sections = []Section{sec}
	return series, t, nil
}

func fig3Thetas(pre Preset) []int {
	// The paper plots θ ∈ {10, 30, 50}; clamp into the preset's range.
	want := []int{10, 30, 50}
	max := 0
	for _, th := range pre.ThetaValues {
		if th > max {
			max = th
		}
	}
	var out []int
	for _, th := range want {
		if th <= max {
			out = append(out, th)
		}
	}
	if len(out) == 0 {
		out = pre.ThetaValues
	}
	return out
}

// ScalePoint is one Figure 4 measurement.
type ScalePoint struct {
	Theta   int
	Budget  int
	Elapsed time.Duration
}

// RunFig4 regenerates Figure 4: ActiveIter training wall time versus
// NP-ratio (data size) for budgets 50 and 100, single fold, γ=100%.
func RunFig4(pre Preset) ([]ScalePoint, *Table, error) {
	pair, err := datagen.Generate(pre.Data)
	if err != nil {
		return nil, nil, err
	}
	base, err := newBaseCounter(pair)
	if err != nil {
		return nil, nil, err
	}
	budgets := []int{50, 100}
	var points []ScalePoint
	for _, theta := range pre.ThetaValues {
		ctx := newCellContext(base, pre.Seed)
		rng := newRunRNG(pre.Seed, theta, 400)
		neg, err := eval.SampleNegatives(pair, theta*len(pair.Anchors), rng)
		if err != nil {
			return nil, nil, err
		}
		splits, err := eval.KFoldSplits(pair.Anchors, neg, pre.Folds, 1.0, rng)
		if err != nil {
			return nil, nil, err
		}
		fd, err := ctx.prepareFold(splits[0])
		if err != nil {
			return nil, nil, err
		}
		for _, b := range budgets {
			m := Method{Name: fmt.Sprintf("ActiveIter-%d", b), Kind: KindPU, Features: MPMD, Budget: b, Strategy: active.Conflict{}}
			_, _, elapsed, err := ctx.runMethod(m, fd, pre.Seed)
			if err != nil {
				return nil, nil, err
			}
			points = append(points, ScalePoint{Theta: theta, Budget: b, Elapsed: elapsed})
		}
	}
	t := &Table{
		Title:     fmt.Sprintf("Figure 4 — training time vs NP-ratio (γ=100%%, preset %q)", pre.Name),
		ColHeader: "method",
	}
	for _, theta := range pre.ThetaValues {
		t.Cols = append(t.Cols, fmt.Sprintf("θ=%d", theta))
	}
	sec := Section{Name: "wall time"}
	for _, b := range budgets {
		row := TableRow{Label: fmt.Sprintf("ActiveIter-%d", b)}
		for _, theta := range pre.ThetaValues {
			for _, p := range points {
				if p.Theta == theta && p.Budget == b {
					row.Cells = append(row.Cells, fmt.Sprintf("%.0fms", float64(p.Elapsed.Microseconds())/1000))
				}
			}
		}
		sec.Rows = append(sec.Rows, row)
	}
	t.Sections = []Section{sec}
	return points, t, nil
}

// RunFig5 regenerates Figure 5: ActiveIter and ActiveIter-Rand across
// query budgets at (θ, γ) fixed, with Iter-MPMD at γ and γ+10% as the
// reference lines.
func RunFig5(pre Preset) (*Table, error) {
	pair, err := datagen.Generate(pre.Data)
	if err != nil {
		return nil, err
	}
	base, err := newBaseCounter(pair)
	if err != nil {
		return nil, err
	}
	type variant struct {
		name    string
		method  Method
		gamma   float64
		budgets []int // nil = single run, column-replicated
	}
	gammaHi := pre.FixedGamma + 0.1
	if gammaHi > 1 {
		gammaHi = 1
	}
	variants := []variant{
		{name: "ActiveIter", method: Method{Kind: KindPU, Features: MPMD, Strategy: active.Conflict{}}, gamma: pre.FixedGamma, budgets: pre.Budgets},
		{name: "ActiveIter-Rand", method: Method{Kind: KindPU, Features: MPMD, Strategy: active.Random{}}, gamma: pre.FixedGamma, budgets: pre.Budgets},
		{name: fmt.Sprintf("Iter-MPMD γ=%.0f%%", pre.FixedGamma*100), method: Method{Kind: KindPU, Features: MPMD}, gamma: pre.FixedGamma},
		{name: fmt.Sprintf("Iter-MPMD γ=%.0f%%", gammaHi*100), method: Method{Kind: KindPU, Features: MPMD}, gamma: gammaHi},
	}
	type task struct {
		variant int
		budget  int
		col     int
	}
	var tasks []task
	for vi, v := range variants {
		if v.budgets == nil {
			tasks = append(tasks, task{variant: vi, budget: 0, col: -1})
			continue
		}
		for ci, b := range v.budgets {
			tasks = append(tasks, task{variant: vi, budget: b, col: ci})
		}
	}
	planner, err := sweepPlanner(base, pre)
	if err != nil {
		return nil, err
	}
	results := make([]eval.MetricSet, len(tasks))
	errs := make([]error, len(tasks))
	workers := pre.Workers
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for ti, tk := range tasks {
		wg.Add(1)
		go func(ti int, tk task) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			v := variants[tk.variant]
			m := v.method
			m.Budget = tk.budget
			m.Name = fmt.Sprintf("%s-b%d", v.name, tk.budget)
			results[ti], errs[ti] = runSingleMethodCell(base, planner, m, pre.FixedTheta, v.gamma, pre.Folds, pre.Seed, pre.Partitions)
		}(ti, tk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	t := &Table{
		Title:     fmt.Sprintf("Figure 5 — budget sensitivity (θ=%d, γ=%.0f%%, preset %q)", pre.FixedTheta, pre.FixedGamma*100, pre.Name),
		ColHeader: "method",
	}
	for _, b := range pre.Budgets {
		t.Cols = append(t.Cols, fmt.Sprintf("b=%d", b))
	}
	for _, metric := range eval.AllMetrics {
		sec := Section{Name: string(metric)}
		for vi, v := range variants {
			row := TableRow{Label: v.name}
			for ci := range pre.Budgets {
				for ti, tk := range tasks {
					if tk.variant != vi {
						continue
					}
					if tk.col == ci || tk.col == -1 {
						row.Cells = append(row.Cells, results[ti].Get(metric).String())
						break
					}
				}
			}
			sec.Rows = append(sec.Rows, row)
		}
		t.Sections = append(t.Sections, sec)
	}
	return t, nil
}

// sweepPlanner derives the shared pair-level partition planner once per
// sweep; nil (and no cost) when the sweep is monolithic.
func sweepPlanner(base *metadiag.Counter, pre Preset) (*partition.Planner, error) {
	if pre.Partitions <= 1 {
		return nil, nil
	}
	return partition.NewPlanner(base)
}

// runSingleMethodCell is runCell for one method.
func runSingleMethodCell(base *metadiag.Counter, planner *partition.Planner, m Method, theta int, gamma float64, folds int, seed int64, partitions int) (eval.MetricSet, error) {
	out, err := runCell(base, planner, []Method{m}, theta, gamma, folds, seed, partitions)
	if err != nil {
		return eval.MetricSet{}, err
	}
	return out[m.Name], nil
}

// newRunRNG derives a deterministic rng for a (seed, θ, salt) run.
func newRunRNG(seed int64, theta, salt int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(theta)*1_000_003 + int64(salt)*7919))
}

// sortedMethodNames returns the method names of a cell result in
// deterministic order.
func sortedMethodNames(ms map[string]eval.MetricSet) []string {
	names := make([]string, 0, len(ms))
	for n := range ms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
