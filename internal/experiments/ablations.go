package experiments

import (
	"fmt"
	"time"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/core"
	"github.com/activeiter/activeiter/internal/datagen"
	"github.com/activeiter/activeiter/internal/eval"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/schema"
)

// RunFeatureAblation (DESIGN.md E8) measures Iter-MPMD with growing
// feature families: paths only, +Ψ^f², +Ψ^a², full. It quantifies each
// family's contribution, generalizing the SVM-MP vs SVM-MPMD comparison
// to the PU model.
func RunFeatureAblation(pre Preset) (*Table, error) {
	pair, err := datagen.Generate(pre.Data)
	if err != nil {
		return nil, err
	}
	lib := schema.StandardLibrary()
	paths := lib.PathsOnly()
	var f2, a2, rest []schema.Named
	for _, d := range lib.Diagrams {
		switch {
		case len(d.ID) >= 7 && d.ID[:7] == "PSI_F2[":
			f2 = append(f2, d)
		case len(d.ID) >= 7 && d.ID[:7] == "PSI_A2[":
			a2 = append(a2, d)
		default:
			rest = append(rest, d)
		}
	}
	variants := []struct {
		name  string
		feats []schema.Named
	}{
		{"paths only (MP)", paths},
		{"+ Ψ^f²", append(append([]schema.Named{}, paths...), f2...)},
		{"+ Ψ^a²", append(append([]schema.Named{}, paths...), a2...)},
		{"+ Ψ^f² + Ψ^a²", append(append(append([]schema.Named{}, paths...), f2...), a2...)},
		{"full (MPMD)", lib.All()},
	}
	theta, gamma := pre.FixedTheta, pre.FixedGamma
	counter, err := metadiag.NewCounter(pair)
	if err != nil {
		return nil, err
	}
	rng := newRunRNG(pre.Seed, theta, 800)
	neg, err := eval.SampleNegatives(pair, theta*len(pair.Anchors), rng)
	if err != nil {
		return nil, err
	}
	splits, err := eval.KFoldSplits(pair.Anchors, neg, pre.Folds, gamma, rng)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     fmt.Sprintf("Feature ablation — Iter-MPMD with growing diagram families (θ=%d, γ=%.0f%%, preset %q)", theta, gamma*100, pre.Name),
		ColHeader: "features",
		Cols:      []string{"F1", "Precision", "Recall", "Accuracy", "dim"},
	}
	sec := Section{Name: "Iter-MPMD"}
	for _, v := range variants {
		ext := metadiag.NewExtractor(counter, v.feats, true)
		var confs []eval.Confusion
		for _, split := range splits {
			counter.SetAnchors(split.TrainPos)
			if err := ext.Recompute(); err != nil {
				return nil, err
			}
			pool := buildPool(split)
			x, err := ext.FeatureMatrix(pool.links)
			if err != nil {
				return nil, err
			}
			res, err := core.Train(core.Problem{Links: pool.links, X: x, LabeledPos: pool.labeledPos}, core.Config{Seed: pre.Seed})
			if err != nil {
				return nil, err
			}
			var conf eval.Confusion
			for k, idx := range pool.testIdx {
				conf.Add(res.Y[idx], pool.testTruth[k])
			}
			confs = append(confs, conf)
		}
		ms := eval.SummarizeConfusions(confs)
		sec.Rows = append(sec.Rows, TableRow{Label: v.name, Cells: []string{
			ms.F1.String(), ms.Precision.String(), ms.Recall.String(), ms.Accuracy.String(),
			fmt.Sprint(len(v.feats) + 1),
		}})
	}
	t.Sections = []Section{sec}
	return t, nil
}

// pool mirrors foldData's layout without feature matrices.
type pool struct {
	links      []hetnet.Anchor
	labeledPos []int
	testIdx    []int
	testTruth  []float64
}

func buildPool(split eval.Split) *pool {
	p := &pool{}
	p.links = append(p.links, split.TrainPos...)
	for i := range split.TrainPos {
		p.labeledPos = append(p.labeledPos, i)
	}
	p.links = append(p.links, split.TrainNeg...)
	offset := len(p.links)
	p.links = append(p.links, split.TestPos...)
	for i := range split.TestPos {
		p.testIdx = append(p.testIdx, offset+i)
		p.testTruth = append(p.testTruth, 1)
	}
	offset = len(p.links)
	p.links = append(p.links, split.TestNeg...)
	for i := range split.TestNeg {
		p.testIdx = append(p.testIdx, offset+i)
		p.testTruth = append(p.testTruth, 0)
	}
	return p
}

// RunQueryAblation (DESIGN.md E9) compares query strategies at a fixed
// budget: the paper's conflict strategy, uncertainty sampling, and
// random, all else equal.
func RunQueryAblation(pre Preset) (*Table, error) {
	pair, err := datagen.Generate(pre.Data)
	if err != nil {
		return nil, err
	}
	base, err := newBaseCounter(pair)
	if err != nil {
		return nil, err
	}
	budget := 50
	if len(pre.Budgets) > 0 {
		budget = pre.Budgets[len(pre.Budgets)-1]
	}
	queryPlanner, err := sweepPlanner(base, pre)
	if err != nil {
		return nil, err
	}
	strategies := []active.Strategy{active.Conflict{}, active.Uncertainty{}, active.Random{}}
	t := &Table{
		Title:     fmt.Sprintf("Query-strategy ablation — ActiveIter with budget %d (θ=%d, γ=%.0f%%, preset %q)", budget, pre.FixedTheta, pre.FixedGamma*100, pre.Name),
		ColHeader: "strategy",
		Cols:      []string{"F1", "Precision", "Recall", "Accuracy"},
	}
	sec := Section{Name: fmt.Sprintf("ActiveIter-%d", budget)}
	for _, s := range strategies {
		m := Method{Name: "ActiveIter-" + s.Name(), Kind: KindPU, Features: MPMD, Budget: budget, Strategy: s}
		ms, err := runSingleMethodCell(base, queryPlanner, m, pre.FixedTheta, pre.FixedGamma, pre.Folds, pre.Seed, pre.Partitions)
		if err != nil {
			return nil, err
		}
		sec.Rows = append(sec.Rows, TableRow{Label: s.Name(), Cells: []string{
			ms.F1.String(), ms.Precision.String(), ms.Recall.String(), ms.Accuracy.String(),
		}})
	}
	t.Sections = []Section{sec}
	return t, nil
}

// RunMatchingAblation (DESIGN.md E7) compares greedy ½-approximation
// selection against the exact Hungarian optimum inside Iter-MPMD:
// alignment quality and training time.
func RunMatchingAblation(pre Preset) (*Table, error) {
	pair, err := datagen.Generate(pre.Data)
	if err != nil {
		return nil, err
	}
	base, err := newBaseCounter(pair)
	if err != nil {
		return nil, err
	}
	ctx := newCellContext(base, pre.Seed)
	theta, gamma := pre.FixedTheta, pre.FixedGamma
	rng := newRunRNG(pre.Seed, theta, 900)
	neg, err := eval.SampleNegatives(pair, theta*len(pair.Anchors), rng)
	if err != nil {
		return nil, err
	}
	splits, err := eval.KFoldSplits(pair.Anchors, neg, pre.Folds, gamma, rng)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:     fmt.Sprintf("Matching ablation — greedy vs Hungarian selection in Iter-MPMD (θ=%d, γ=%.0f%%, preset %q)", theta, gamma*100, pre.Name),
		ColHeader: "selection",
		Cols:      []string{"F1", "Precision", "Recall", "time/fold"},
	}
	sec := Section{Name: "Iter-MPMD"}
	for _, exact := range []bool{false, true} {
		var confs []eval.Confusion
		var total time.Duration
		for _, split := range splits {
			fd, err := ctx.prepareFold(split)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			res, err := core.Train(core.Problem{
				Links: fd.pool, X: fd.xFull, LabeledPos: fd.labeledPos,
			}, core.Config{Seed: pre.Seed, ExactSelection: exact})
			if err != nil {
				return nil, err
			}
			total += time.Since(start)
			var conf eval.Confusion
			for k, idx := range fd.testIdx {
				conf.Add(res.Y[idx], fd.testTruth[k])
			}
			confs = append(confs, conf)
		}
		ms := eval.SummarizeConfusions(confs)
		label := "greedy (paper)"
		if exact {
			label = "hungarian (exact)"
		}
		sec.Rows = append(sec.Rows, TableRow{Label: label, Cells: []string{
			ms.F1.String(), ms.Precision.String(), ms.Recall.String(),
			fmt.Sprintf("%.0fms", float64(total.Microseconds())/1000/float64(len(splits))),
		}})
	}
	t.Sections = []Section{sec}
	return t, nil
}
