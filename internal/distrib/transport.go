package distrib

import (
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sync"
	"time"
)

// Transport produces worker connections for the coordinator. Dial is
// called lazily, once per worker slot (plus once per retry that burned
// a connection), and may be called concurrently.
//
// Three implementations ship: Loopback (in-process goroutine — tests,
// benchmarks, and the degenerate single-machine case), Exec (stdio
// pipes to a spawned worker subprocess — one machine, many processes)
// and TCP (remote workers listening with ListenAndServe — many
// machines).
type Transport interface {
	Dial() (io.ReadWriteCloser, error)
}

// Loopback serves every dialed connection with an in-process worker
// goroutine over a synchronous pipe. The worker still speaks the full
// wire protocol — loopback runs exercise serialization, extraction and
// reconciliation end to end, minus process isolation.
type Loopback struct{}

// loopbackConn tags the coordinator half so Close also reaps the
// worker goroutine (closing the pipe makes Serve return io.EOF).
type loopbackConn struct {
	net.Conn
	done chan struct{}
}

func (c *loopbackConn) Close() error {
	err := c.Conn.Close()
	<-c.done
	return err
}

// Dial implements Transport.
func (Loopback) Dial() (io.ReadWriteCloser, error) {
	here, there := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer there.Close()
		// The coordinator observes worker death through the broken
		// stream; the error itself is not reachable from a real remote
		// worker either.
		_ = Serve(there)
	}()
	return &loopbackConn{Conn: here, done: done}, nil
}

// Exec spawns one worker subprocess per connection and speaks the wire
// protocol over its stdin/stdout. The command must run the worker serve
// loop on its stdio (cmd/activeiter -worker does).
type Exec struct {
	Cmd  string
	Args []string
	// Env is the child environment; nil inherits the parent's.
	Env []string
	// Stderr receives the worker's stderr; nil discards it.
	Stderr io.Writer
}

// execConn bundles the child's pipes; Close tears the process down.
type execConn struct {
	io.WriteCloser // child stdin
	io.Reader      // child stdout
	cmd            *exec.Cmd
}

// execShutdownGrace is how long Close waits for a worker process to
// exit on its own after stdin closes before killing it.
const execShutdownGrace = 5 * time.Second

func (c *execConn) Close() error {
	c.WriteCloser.Close() // EOF on the child's stdin ends its serve loop
	// A worker torn down mid-stream can be blocked in write(2) on a full
	// stdout pipe nobody reads anymore; os/exec only closes its
	// StdoutPipe after the process exits, so an unconditional Wait could
	// hang forever. Give the child a grace period, then kill it.
	done := make(chan error, 1)
	go func() { done <- c.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			// A worker killed mid-job exits non-zero; the coordinator has
			// already decided to retry, so surface nothing fatal.
			return fmt.Errorf("distrib: worker process: %w", err)
		}
		return nil
	case <-time.After(execShutdownGrace):
		c.cmd.Process.Kill()
		<-done
		return fmt.Errorf("distrib: worker process killed after %v shutdown grace", execShutdownGrace)
	}
}

// Dial implements Transport.
func (t *Exec) Dial() (io.ReadWriteCloser, error) {
	cmd := exec.Command(t.Cmd, t.Args...)
	cmd.Env = t.Env
	cmd.Stderr = t.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("distrib: start worker %q: %w", t.Cmd, err)
	}
	return &execConn{WriteCloser: stdin, Reader: stdout, cmd: cmd}, nil
}

// TCP dials remote workers round-robin across the given addresses. Each
// address should run ListenAndServe (cmd/activeiter -worker-listen).
type TCP struct {
	Addrs []string

	mu   sync.Mutex
	next int
}

// NewTCP builds a TCP transport over the worker addresses.
func NewTCP(addrs ...string) *TCP {
	return &TCP{Addrs: addrs}
}

// Dial implements Transport.
func (t *TCP) Dial() (io.ReadWriteCloser, error) {
	if len(t.Addrs) == 0 {
		return nil, fmt.Errorf("distrib: TCP transport has no worker addresses")
	}
	t.mu.Lock()
	addr := t.Addrs[t.next%len(t.Addrs)]
	t.next++
	t.mu.Unlock()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("distrib: dial worker %s: %w", addr, err)
	}
	return conn, nil
}

// ListenAndServe accepts worker connections on addr and serves each in
// its own goroutine until the listener fails. ready (optional) receives
// the bound address once listening — callers binding ":0" learn the
// port.
func ListenAndServe(addr string, ready chan<- string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			if err := Serve(conn); err != nil && err != io.EOF {
				fmt.Fprintf(os.Stderr, "distrib: worker connection: %v\n", err)
			}
		}()
	}
}
