package distrib

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os/exec"
	"sync"
	"time"
)

// Transport produces worker connections for the coordinator. Dial is
// called lazily, once per worker slot (plus once per retry that burned
// a connection), and may be called concurrently.
//
// Three implementations ship: Loopback (in-process goroutine — tests,
// benchmarks, and the degenerate single-machine case), Exec (stdio
// pipes to a spawned worker subprocess — one machine, many processes)
// and TCP (remote workers listening with ListenAndServe — many
// machines).
type Transport interface {
	Dial() (io.ReadWriteCloser, error)
}

// Loopback serves every dialed connection with an in-process worker
// goroutine over a synchronous pipe. The worker still speaks the full
// wire protocol — loopback runs exercise serialization, extraction and
// reconciliation end to end, minus process isolation.
type Loopback struct{}

// loopbackConn tags the coordinator half so Close also reaps the
// worker goroutine (closing the pipe makes Serve return io.EOF).
type loopbackConn struct {
	net.Conn
	done chan struct{}
}

func (c *loopbackConn) Close() error {
	err := c.Conn.Close()
	<-c.done
	return err
}

// Dial implements Transport.
func (Loopback) Dial() (io.ReadWriteCloser, error) {
	here, there := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer there.Close()
		// The coordinator observes worker death through the broken
		// stream; the error itself is not reachable from a real remote
		// worker either.
		_ = Serve(there)
	}()
	return &loopbackConn{Conn: here, done: done}, nil
}

// Exec spawns one worker subprocess per connection and speaks the wire
// protocol over its stdin/stdout. The command must run the worker serve
// loop on its stdio (cmd/activeiter -worker does).
type Exec struct {
	Cmd  string
	Args []string
	// Env is the child environment; nil inherits the parent's.
	Env []string
	// Stderr receives the worker's stderr; nil discards it.
	Stderr io.Writer
	// ShutdownGrace overrides how long Close waits for the worker to
	// exit after stdin closes before killing it; zero means
	// execShutdownGrace. Tests shrink it to prove the reap path without
	// waiting out the production grace.
	ShutdownGrace time.Duration
}

// execConn bundles the child's pipes; Close tears the process down.
type execConn struct {
	io.WriteCloser // child stdin
	io.Reader      // child stdout
	cmd            *exec.Cmd
	grace          time.Duration
}

// execShutdownGrace is how long Close waits for a worker process to
// exit on its own after stdin closes before killing it.
const execShutdownGrace = 5 * time.Second

func (c *execConn) Close() error {
	c.WriteCloser.Close() // EOF on the child's stdin ends its serve loop
	// A worker torn down mid-stream can be blocked in write(2) on a full
	// stdout pipe nobody reads anymore; os/exec only closes its
	// StdoutPipe after the process exits, so an unconditional Wait could
	// hang forever. Give the child a grace period, then kill it.
	done := make(chan error, 1)
	go func() { done <- c.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			// A worker killed mid-job exits non-zero; the coordinator has
			// already decided to retry, so surface nothing fatal.
			return fmt.Errorf("distrib: worker process: %w", err)
		}
		return nil
	case <-time.After(c.grace):
		c.cmd.Process.Kill()
		<-done
		return fmt.Errorf("distrib: worker process killed after %v shutdown grace", c.grace)
	}
}

// Dial implements Transport.
func (t *Exec) Dial() (io.ReadWriteCloser, error) {
	cmd := exec.Command(t.Cmd, t.Args...)
	cmd.Env = t.Env
	cmd.Stderr = t.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("distrib: start worker %q: %w", t.Cmd, err)
	}
	grace := t.ShutdownGrace
	if grace <= 0 {
		grace = execShutdownGrace
	}
	return &execConn{WriteCloser: stdin, Reader: stdout, cmd: cmd, grace: grace}, nil
}

// TCP dials remote workers round-robin across the given addresses. Each
// address should run ListenAndServe (cmd/activeiter -worker-listen).
//
// The transport scores worker health: the coordinator reports every
// shard attempt's outcome through ReportWorker, and an address whose
// consecutive-failure streak reaches QuarantineAfter is skipped by Dial
// for Cooldown — a flapping worker stops eating retries while the
// healthy ones carry the run. Quarantine yields to availability: when
// every address is benched, Dial proceeds with the scheduled one anyway
// rather than deadlocking the run.
type TCP struct {
	Addrs []string
	// QuarantineAfter is the consecutive-failure streak that benches a
	// worker; zero means defaultQuarantineAfter.
	QuarantineAfter int
	// Cooldown is how long a benched worker sits out; zero means
	// defaultQuarantineCooldown.
	Cooldown time.Duration

	mu     sync.Mutex
	next   int
	health *healthBoard
	// now is the quarantine clock, injectable by tests.
	now func() time.Time
}

// NewTCP builds a TCP transport over the worker addresses.
func NewTCP(addrs ...string) *TCP {
	return &TCP{Addrs: addrs}
}

// board lazily builds the health scoreboard under t.mu.
func (t *TCP) board() *healthBoard {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.health == nil {
		t.health = newHealthBoard(t.QuarantineAfter, t.Cooldown, t.now)
	}
	return t.health
}

// ReportWorker records a shard attempt's outcome against the worker's
// address. The coordinator calls it through a transport interface probe
// after every attempt on a conn that exposes WorkerID.
func (t *TCP) ReportWorker(id string, ok bool) {
	t.board().report(id, ok)
}

// tcpConn tags a worker connection with its address so the coordinator
// can attribute outcomes to the right worker.
type tcpConn struct {
	net.Conn
	addr string
}

// WorkerID returns the worker's address for health attribution.
func (c *tcpConn) WorkerID() string { return c.addr }

// Dial implements Transport: round-robin over the addresses, skipping
// quarantined workers unless every address is benched.
func (t *TCP) Dial() (io.ReadWriteCloser, error) {
	if len(t.Addrs) == 0 {
		return nil, fmt.Errorf("distrib: TCP transport has no worker addresses")
	}
	board := t.board()
	t.mu.Lock()
	addr := t.Addrs[t.next%len(t.Addrs)]
	t.next++
	for skipped := 0; board.quarantined(addr) && skipped < len(t.Addrs)-1; skipped++ {
		addr = t.Addrs[t.next%len(t.Addrs)]
		t.next++
	}
	t.mu.Unlock()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		// A refused dial is itself a health signal — without it a downed
		// worker is never benched because no conn exists to attribute
		// failures to.
		board.report(addr, false)
		return nil, fmt.Errorf("distrib: dial worker %s: %w", addr, err)
	}
	return &tcpConn{Conn: conn, addr: addr}, nil
}

// ListenAndServe accepts worker connections on addr and serves each in
// its own goroutine until the listener fails. ready (optional) receives
// the bound address once listening — callers binding ":0" learn the
// port.
//
// The accept loop is hardened for long-lived workers: transient accept
// errors (EMFILE, ECONNABORTED) back off exponentially instead of
// killing the listener, and a panicking connection handler takes down
// only its own connection.
func ListenAndServe(addr string, ready chan<- string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	backoff := 5 * time.Millisecond
	for {
		conn, err := ln.Accept()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				// Transient accept failure: one bad accept must not kill a
				// worker serving other coordinators. Sleep and retry, capped.
				logger.Warn("accept failed, retrying", "err", err, "backoff", backoff)
				time.Sleep(backoff)
				if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				continue
			}
			return err
		}
		backoff = 5 * time.Millisecond
		go func() {
			defer conn.Close()
			defer func() {
				// A malformed job must not take the whole worker process
				// down with it: contain the panic to this connection.
				if r := recover(); r != nil {
					logger.Error("worker connection panic", "panic", fmt.Sprint(r))
				}
			}()
			if err := Serve(conn); err != nil && err != io.EOF {
				logger.Warn("worker connection failed", "err", err)
			}
		}()
	}
}
