package distrib

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/partition"
	"github.com/activeiter/activeiter/internal/telemetry"
)

// roundSeedStride separates the per-round training seeds of a session,
// the same way partition's per-shard stride separates shards. Round 0
// keeps the configured seed unchanged.
const roundSeedStride = 2_038_074_743

// defaultDeltaMaxLabels is the JobRef label-delta cap when
// Options.DeltaMaxLabels is zero.
const defaultDeltaMaxLabels = 4096

// Session runs multi-round distributed alignment over a stable shard
// plan with sticky shard routing: connections stay open across rounds,
// each shard is routed back to the worker connection that already holds
// its fingerprinted state, and a repeat round ships a JobRef (the label
// delta since the last run) instead of the full job. Extraction and job
// serialization are paid once per shard on the coordinator, counting and
// feature extraction once per shard on the worker; every later round
// costs bytes proportional to its new labels.
//
// The fallback ladder keeps sessions exactly as reliable as single-shot
// runs: a JobRef the worker cannot serve warm (restarted process,
// evicted cache entry, colliding fingerprint) is answered by a full-Job
// re-ship on the same connection; a broken connection burns its cached
// fingerprints and the shard retries cold on a fresh dial, up to
// Options.Retries. Either way the votes that come back are identical —
// delta-shipped rounds are property-tested bit-equal to full re-ship.
//
// Use one Session per (pair, plan) lifetime: Run may be called once per
// active-learning round, with the caller growing the plan's prelabels
// (Plan.AppendLabels) and re-splitting the budget (Plan.Rebudget)
// between rounds. Close releases the worker connections. A Session is
// not safe for concurrent Run calls.
type Session struct {
	transport Transport
	opts      Options
	pair      *hetnet.AlignedPair

	round int
	slots []*sessionSlot
	// shardsMu guards the shards map itself; each entry is only ever
	// touched by the slot goroutine its shard is assigned to.
	shardsMu sync.Mutex
	shards   map[int]*sessionShard
	cum      Metrics

	// seedFP/seedBody are built once on the first Run (nil body =
	// unseeded session); slots negotiate per connection and renegotiate
	// after a drop.
	seedOnce sync.Once
	seedFP   uint64
	seedBody []byte
	seedGate seedGate

	oracleMu sync.Mutex
	queries  atomic.Int64
}

// sessionSlot is one persistent worker connection and the shard states
// it holds warm.
type sessionSlot struct {
	conn   io.ReadWriteCloser
	seeded bool           // this connection completed seed negotiation
	holds  map[int]uint64 // part index → fingerprint run warm on this connection
}

// sessionShard is the coordinator-side cache of one shard: the one-time
// extraction (unseeded sessions only), its fingerprint, and how much of
// the label log has been shipped to the current holder.
type sessionShard struct {
	shard    *partition.Shard // nil when seeded — no extraction, indices stay global
	seeded   bool
	template *Job // job with zero prelabels; per-round copies override the mutables
	fp       uint64
	partSig  uint64 // TrainPos/Candidates content hash: detects plan drift between rounds
	sent     int    // prelabels already held by the home connection
	home     int    // slot index holding fp, -1 when none
}

// extracted reports whether the shard shipped as an extracted sub-pair
// (never for seeded shards, which ship no networks at all).
func (st *sessionShard) extracted() bool {
	return st.shard != nil && st.shard.Extracted()
}

// labels maps a slice of the part's (global-index) label log into the
// template's index space: identity for seeded shards, the extraction
// forward maps otherwise.
func (st *sessionShard) labels(log []partition.LabeledLink) ([]partition.LabeledLink, error) {
	if st.seeded {
		return log, nil
	}
	return st.shard.RemapLabels(log)
}

// NewSession opens a sticky shard session for the pair over the
// transport. Connections are dialed lazily on the first Run.
func NewSession(transport Transport, pair *hetnet.AlignedPair, opts Options) (*Session, error) {
	if transport == nil {
		return nil, fmt.Errorf("distrib: nil transport")
	}
	if pair == nil {
		return nil, fmt.Errorf("distrib: nil pair")
	}
	return &Session{
		transport: transport,
		opts:      opts,
		pair:      pair,
		shards:    make(map[int]*sessionShard),
	}, nil
}

// Round returns how many rounds have completed.
func (s *Session) Round() int { return s.round }

// Metrics returns the running totals across every completed round.
func (s *Session) Metrics() *Metrics {
	m := s.cum
	m.Shards = append([]ShardMetrics(nil), s.cum.Shards...)
	return &m
}

// Close tears down the worker connections. The session keeps its
// coordinator-side shard cache, but a Run after Close redials and
// re-ships cold (the workers' warm state died with the connections).
func (s *Session) Close() error {
	var first error
	for _, slot := range s.slots {
		if slot.conn != nil {
			if err := slot.conn.Close(); err != nil && first == nil {
				first = err
			}
			slot.conn = nil
			slot.seeded = false
			slot.holds = make(map[int]uint64)
		}
	}
	for _, st := range s.shards {
		st.home = -1
	}
	return first
}

// Run executes one round of the plan: every shard trains on a worker
// (warm where the plan is stable, cold otherwise) and the votes merge
// into one globally one-to-one result. The plan must be the same object
// family across rounds — same parts, with prelabels appended and budget
// re-split between calls; a part whose pool changed is detected by
// content hash and re-ships cold. Returns the round's result and the
// round's metrics (cumulative totals via Metrics).
func (s *Session) Run(plan *partition.Plan, oracle active.Oracle) (*partition.Result, *Metrics, error) {
	if plan == nil || len(plan.Parts) == 0 {
		return nil, nil, fmt.Errorf("distrib: empty plan")
	}
	totalBudget := 0
	for i := range plan.Parts {
		totalBudget += plan.Parts[i].Budget
	}
	if totalBudget > 0 && oracle == nil {
		return nil, nil, fmt.Errorf("distrib: plan carries budget %d but no oracle", totalBudget)
	}
	start := time.Now()

	// The seed is a property of the pair and training config, both fixed
	// for the session's lifetime — build (and encode) it exactly once. A
	// failed build degrades every round to unseeded shipping.
	s.seedOnce.Do(func() {
		if s.opts.NoSeed {
			return
		}
		if fp, body, err := buildSeed(s.pair, s.opts.Base, s.opts.Train, s.opts.Tracer.TraceID()); err == nil {
			s.seedFP, s.seedBody = fp, body
		}
	})

	k := len(plan.Parts)
	workers := s.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}
	for len(s.slots) < workers {
		s.slots = append(s.slots, &sessionSlot{holds: make(map[int]uint64)})
	}
	retries := s.opts.Retries
	if retries == 0 {
		retries = 2
	} else if retries < 0 {
		retries = 0
	}
	shardTimeout := s.opts.ShardTimeout
	if shardTimeout == 0 {
		shardTimeout = defaultShardTimeout
	} else if shardTimeout < 0 {
		shardTimeout = 0
	}

	// Sticky slot assignment: a shard whose state a connection holds goes
	// back to that connection; the rest balance across the least-loaded
	// slots.
	assign := make([][]int, len(s.slots))
	for i := range plan.Parts {
		if st := s.shards[plan.Parts[i].Index]; st != nil && st.home >= 0 && st.home < len(assign) {
			assign[st.home] = append(assign[st.home], i)
		}
	}
	for i := range plan.Parts {
		if st := s.shards[plan.Parts[i].Index]; st != nil && st.home >= 0 && st.home < len(assign) {
			continue
		}
		best := 0
		for sl := 1; sl < len(assign); sl++ {
			if len(assign[sl]) < len(assign[best]) {
				best = sl
			}
		}
		assign[best] = append(assign[best], i)
	}

	tr := s.opts.Tracer
	roundSpan := tr.Start(fmt.Sprintf("round %d", s.round), 0)
	roundSpan.Annotate("shards", fmt.Sprintf("%d", k))

	rr := &sessionRound{
		s:            s,
		plan:         plan,
		oracle:       oracle,
		seed:         s.opts.Train.Seed + int64(s.round)*roundSeedStride,
		retries:      retries,
		shardTimeout: shardTimeout,
		sleep:        time.Sleep,
		jitter:       rand.New(rand.NewSource(s.opts.Train.Seed ^ 0x5DEECE66D ^ int64(s.round))),
		results:      make([]*shardResult, k),
		shardMs:      make([]ShardMetrics, k),
		merger:       partition.NewMerger(),
		tracer:       tr,
		roundSpan:    roundSpan.ID(),
	}
	queriesBefore := s.queries.Load()

	var wg sync.WaitGroup
	for sl := range s.slots {
		if len(assign[sl]) == 0 {
			continue
		}
		wg.Add(1)
		go func(sl int, shards []int) {
			defer wg.Done()
			rr.slotLoop(sl, shards)
		}(sl, assign[sl])
	}
	wg.Wait()

	metrics := &Metrics{Retries: rr.totalRetries, Fallbacks: rr.totalFallbacks}
	metrics.Queries = int(s.queries.Load() - queriesBefore)
	metrics.CacheMisses = rr.misses
	metrics.SeedBytes = rr.seedBytes.Load()
	metrics.SeedShips = int(rr.seedShips.Load())
	if rr.err != nil {
		roundSpan.End()
		metrics.publish()
		// Failed rounds still surface their audit — attempt counts and
		// retry totals are exactly what a caller needs to diagnose the
		// abort. Per-shard entries carry whatever was recorded before the
		// round died.
		for i := range rr.shardMs {
			if rr.shardMs[i].Attempts > 0 {
				metrics.Shards = append(metrics.Shards, rr.shardMs[i])
			}
		}
		return nil, metrics, rr.err
	}

	var reports []partition.PartReport
	weights := make(map[int][]float64, len(rr.results))
	for i, sr := range rr.results {
		if sr == nil {
			roundSpan.End()
			metrics.publish()
			return nil, metrics, fmt.Errorf("distrib: shard %d never completed", plan.Parts[i].Index)
		}
		reports = append(reports, sr.report)
		weights[plan.Parts[i].Index] = sr.weights
		metrics.Shards = append(metrics.Shards, rr.shardMs[i])
		if rr.shardMs[i].CacheHit {
			metrics.CacheHits++
		}
		metrics.JobBytes += sr.jobBytes
		metrics.DeltaBytes += sr.refBytes
		metrics.ResultBytes += sr.readBytes
	}
	rec := tr.Start("reconcile", roundSpan.ID())
	res := rr.merger.Finish()
	rec.End()
	res.Reports = reports
	res.ShardWeights = weights
	res.Elapsed = time.Since(start)
	roundSpan.End()
	metrics.publish()
	s.cum.add(metrics)
	s.round++
	return res, metrics, nil
}

// sessionRound is one Run's shared state.
type sessionRound struct {
	s            *Session
	plan         *partition.Plan
	oracle       active.Oracle
	seed         int64
	retries      int
	shardTimeout time.Duration
	sleep        func(time.Duration)

	seedBytes atomic.Int64
	seedShips atomic.Int64

	// tracer/roundSpan carry the round's trace context (nil tracer =
	// tracing off, zero wire IDs).
	tracer    *telemetry.Tracer
	roundSpan uint64

	mu             sync.Mutex
	results        []*shardResult
	shardMs        []ShardMetrics
	merger         *partition.Merger
	misses         int
	totalRetries   int
	totalFallbacks int
	jitter         *rand.Rand // guarded by mu
	err            error
}

// seedConn negotiates the session's seed on a fresh connection, under
// the shard deadline, folding the bytes into the round's audit. The
// session's first negotiation is gated so the initial burst of dials
// into a shared worker process ships one seed, not one per connection.
func (rr *sessionRound) seedConn(conn io.ReadWriteCloser) error {
	if release := rr.s.seedGate.wait(); release != nil {
		defer release()
	}
	disarm := armDeadline(conn, rr.shardTimeout)
	defer disarm()
	n, shipped, err := negotiateSeed(conn, rr.s.seedFP, rr.s.seedBody)
	rr.seedBytes.Add(n)
	if shipped && err == nil {
		rr.seedShips.Add(1)
	}
	return err
}

// aborted reports (under mu) whether the round already failed.
func (rr *sessionRound) aborted() bool {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	return rr.err != nil
}

// slotLoop runs one connection's shard list sequentially, retrying each
// shard on a fresh connection (with capped exponential backoff) until
// its attempt budget runs out, then degrading to the in-process
// fallback before giving up on the round. Reconnect hardening is built
// into the retry itself: a dropped sticky connection burns its warm
// state, so the retry redials, replays the handshake, and re-ships the
// shard cold — the fallback ladder from JobRef to full Job to fresh
// connection.
func (rr *sessionRound) slotLoop(sl int, shards []int) {
	slot := rr.s.slots[sl]
	for _, i := range shards {
		attempts := 0
		for {
			if rr.aborted() {
				return
			}
			attempts++
			if attempts > 1 {
				rr.mu.Lock()
				delay := backoffDelay(rr.jitter, attempts-1)
				rr.mu.Unlock()
				rr.sleep(delay)
			}
			sr, sm, err := rr.runShard(slot, sl, i)
			if err == nil {
				sm.Attempts = attempts
				rr.commit(i, sr, sm)
				break
			}
			// A failure burns the connection and everything it held warm.
			rr.dropConn(slot)
			if attempts > rr.retries {
				if !rr.s.opts.NoFallback {
					// Transport attempts are spent: degrade to the in-process
					// loopback path rather than aborting the whole round.
					attempts++
					fsr, fsm, ferr := rr.runFallback(i)
					if ferr == nil {
						fsm.Attempts = attempts
						rr.mu.Lock()
						rr.totalFallbacks++
						rr.mu.Unlock()
						rr.commit(i, fsr, fsm)
						break
					}
					err = ferr
				}
				rr.mu.Lock()
				rr.shardMs[i].Shard = rr.plan.Parts[i].Index
				rr.shardMs[i].Attempts = attempts
				rr.mu.Unlock()
				rr.fail(fmt.Errorf("distrib: shard %d failed after %d attempts: %w", rr.plan.Parts[i].Index, attempts, err))
				return
			}
			rr.mu.Lock()
			rr.totalRetries++
			rr.mu.Unlock()
		}
	}
}

// runFallback executes the plan's i-th part in-process over a private
// loopback worker — the same degradation rung as the single-shot
// coordinator's. The job ships with its full prelabel log and a zero
// fingerprint (the private connection dies immediately, so caching
// would be waste); the loopback worker runs the identical
// partition.PreparePart+Train path, so the votes are bit-identical to a
// healthy remote run's.
func (rr *sessionRound) runFallback(i int) (*shardResult, ShardMetrics, error) {
	part := &rr.plan.Parts[i]
	st := rr.shardState(i)
	sm := ShardMetrics{Shard: part.Index, Extracted: st.extracted(), Fallback: true}
	logger.Warn("session shard degraded to in-process fallback", "shard", part.Index)
	track := fmt.Sprintf("shard %d (fallback)", part.Index)
	sp := rr.tracer.Start(fmt.Sprintf("shard %d", part.Index), rr.roundSpan)
	sp.SetTrack(track)
	defer sp.End()
	conn, err := dialWorker(Loopback{})
	if err != nil {
		return nil, sm, err
	}
	defer conn.Close()
	if st.seeded {
		// The template references the seed, so the private loopback conn
		// must negotiate it too (the in-process worker shares the global
		// seed cache — after the first ship this is a few-byte ref-hit).
		if err := rr.seedConn(conn); err != nil {
			return nil, sm, err
		}
	}
	disarm := armDeadline(conn, rr.shardTimeout)
	defer disarm()

	job := *st.template
	job.Budget = part.Budget
	job.Seed = rr.seed
	job.Fingerprint = 0
	job.TraceID = rr.tracer.TraceID()
	job.SpanID = sp.ID()
	pre, err := st.labels(part.Prelabeled)
	if err != nil {
		return nil, sm, err
	}
	job.Prelabeled = WireLabels(pre)

	sr := &shardResult{extracted: st.extracted(), fallback: true}
	cw := &countingWriter{w: conn}
	if err := WriteFrame(cw, FrameJob, &job); err != nil {
		return nil, sm, err
	}
	sr.jobBytes = cw.n
	env := &streamEnv{
		oracle: rr.oracle, oracleMu: &rr.s.oracleMu, queries: &rr.s.queries,
		onProgress: rr.s.opts.OnProgress,
	}
	if err := collectShard(conn, part.Index, env, sr); err != nil {
		return nil, sm, err
	}
	ingestWorkerSpans(rr.tracer, track, sr.spans)
	sm.JobBytes = sr.jobBytes
	return sr, sm, nil
}

// dropConn closes a slot's connection and forgets its warm state.
func (rr *sessionRound) dropConn(slot *sessionSlot) {
	if slot.conn != nil {
		slot.conn.Close()
		slot.conn = nil
	}
	slot.seeded = false
	rr.s.shardsMu.Lock()
	for idx := range slot.holds {
		if st := rr.s.shards[idx]; st != nil {
			st.home = -1
		}
	}
	rr.s.shardsMu.Unlock()
	slot.holds = make(map[int]uint64)
}

// commit streams a completed shard's votes into the merger.
func (rr *sessionRound) commit(i int, sr *shardResult, sm ShardMetrics) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	for _, v := range sr.votes {
		rr.merger.Add(v)
	}
	sr.votes = nil
	rr.results[i] = sr
	rr.shardMs[i] = sm
}

func (rr *sessionRound) fail(err error) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if rr.err == nil {
		rr.err = err
	}
}

// shardState returns (building if needed) the session cache entry for
// the plan's i-th part, re-extracting when the part's pool changed since
// it was cached.
func (rr *sessionRound) shardState(i int) *sessionShard {
	part := &rr.plan.Parts[i]
	sig := partSignature(part)
	rr.s.shardsMu.Lock()
	st := rr.s.shards[part.Index]
	rr.s.shardsMu.Unlock()
	if st != nil && st.partSig == sig {
		return st
	}
	// Build outside the lock: extraction and encoding are the expensive
	// one-time costs, and no two slots ever build the same part.
	if rr.s.seedBody != nil {
		// Seeded session: no extraction, no networks — the template is a
		// few columns of pool indices against the connection's seed.
		template := NewSeededJob(rr.s.pair, part, rr.s.opts.Train, rr.s.seedFP)
		template.Prelabeled = nil
		st = &sessionShard{
			seeded:   true,
			template: template,
			fp:       template.ComputeFingerprint(),
			partSig:  sig,
			home:     -1,
		}
		rr.s.shardsMu.Lock()
		rr.s.shards[part.Index] = st
		rr.s.shardsMu.Unlock()
		return st
	}
	sh := buildShard(rr.s.pair, part, rr.s.opts.NoExtract)
	// The template is the one-time serialization cost: networks encoded
	// once, per-round copies only swap the round mutables.
	template := NewJob(sh, rr.s.opts.Train)
	template.Prelabeled = nil
	st = &sessionShard{
		shard:    sh,
		template: template,
		fp:       template.ComputeFingerprint(),
		partSig:  sig,
		home:     -1,
	}
	rr.s.shardsMu.Lock()
	rr.s.shards[part.Index] = st
	rr.s.shardsMu.Unlock()
	return st
}

// runShard executes the plan's i-th part on the slot's connection,
// delta-shipped when the connection holds the shard warm and the delta
// is within bounds, as a full job otherwise.
func (rr *sessionRound) runShard(slot *sessionSlot, sl, i int) (*shardResult, ShardMetrics, error) {
	part := &rr.plan.Parts[i]
	st := rr.shardState(i)
	sm := ShardMetrics{Shard: part.Index, Extracted: st.extracted()}
	track := fmt.Sprintf("shard %d", part.Index)
	sp := rr.tracer.Start(fmt.Sprintf("shard %d", part.Index), rr.roundSpan)
	sp.SetTrack(track)
	defer sp.End()

	if slot.conn == nil {
		conn, err := dialWorker(rr.s.transport)
		if err != nil {
			return nil, sm, err
		}
		slot.conn = conn
	}
	if rr.s.seedBody != nil && !slot.seeded {
		// One negotiation per (re)dialed connection; a failure burns the
		// conn via the caller's retry ladder, which redials and
		// renegotiates.
		if err := rr.seedConn(slot.conn); err != nil {
			return nil, sm, err
		}
		slot.seeded = true
	}
	conn := slot.conn
	// The per-shard deadline spans the whole dispatch — JobRef, CacheAck,
	// any full-Job fallback, the response stream — and is disarmed before
	// the (persistent) connection moves on to its next shard.
	disarm := armDeadline(conn, rr.shardTimeout)
	defer disarm()
	env := &streamEnv{
		oracle: rr.oracle, oracleMu: &rr.s.oracleMu, queries: &rr.s.queries,
		onProgress: rr.s.opts.OnProgress,
	}

	delta := part.Prelabeled[min(st.sent, len(part.Prelabeled)):]
	deltaCap := rr.s.opts.DeltaMaxLabels
	if deltaCap == 0 {
		deltaCap = defaultDeltaMaxLabels
	}
	tryDelta := st.home == sl && slot.holds[part.Index] == st.fp &&
		deltaCap > 0 && len(delta) <= deltaCap

	// One shardResult spans the whole dispatch, so a missed JobRef
	// attempt's bytes (frame out, CacheAck back) stay in the audit.
	sr := &shardResult{extracted: st.extracted()}

	if tryDelta {
		wireDelta, err := st.labels(delta)
		if err != nil {
			return nil, sm, err
		}
		ref := &JobRef{
			Shard:       part.Index,
			Fingerprint: st.fp,
			AddLabels:   WireLabels(wireDelta),
			Budget:      part.Budget,
			Seed:        rr.seed,
			TraceID:     rr.tracer.TraceID(),
			SpanID:      sp.ID(),
		}
		cw := &countingWriter{w: conn}
		if err := WriteFrame(cw, FrameJobRef, ref); err != nil {
			return nil, sm, err
		}
		sr.refBytes += cw.n
		cr := &countingReader{r: conn}
		var ack CacheAck
		if err := ReadExpect(cr, FrameCacheAck, &ack); err != nil {
			return nil, sm, err
		}
		sr.readBytes += cr.n
		if ack.Hit {
			if err := collectShard(conn, part.Index, env, sr); err != nil {
				return nil, sm, err
			}
			ingestWorkerSpans(rr.tracer, track, sr.spans)
			st.sent = len(part.Prelabeled)
			sm.CacheHit = true
			sm.DeltaLabels = len(delta)
			sm.JobBytes = sr.refBytes
			return sr, sm, nil
		}
		// Miss: the worker no longer holds the shard (restart, eviction,
		// collision defense). Fall through to a full re-ship on the same
		// connection — the stream is still healthy.
		rr.mu.Lock()
		rr.misses++
		rr.mu.Unlock()
		st.home = -1
		delete(slot.holds, part.Index)
	}

	// Full job: the cached template with this round's mutables.
	job := *st.template
	job.Budget = part.Budget
	job.Seed = rr.seed
	job.Fingerprint = st.fp
	job.TraceID = rr.tracer.TraceID()
	job.SpanID = sp.ID()
	pre, err := st.labels(part.Prelabeled)
	if err != nil {
		return nil, sm, err
	}
	job.Prelabeled = WireLabels(pre)

	cw := &countingWriter{w: conn}
	if err := WriteFrame(cw, FrameJob, &job); err != nil {
		return nil, sm, err
	}
	sr.jobBytes = cw.n
	if err := collectShard(conn, part.Index, env, sr); err != nil {
		return nil, sm, err
	}
	ingestWorkerSpans(rr.tracer, track, sr.spans)
	st.home = sl
	st.sent = len(part.Prelabeled)
	slot.holds[part.Index] = st.fp
	sm.JobBytes = sr.jobBytes + sr.refBytes
	return sr, sm, nil
}

// partSignature hashes a part's pool content (TrainPos + Candidates) to
// detect a plan that drifted between rounds — such a shard re-extracts
// and re-ships cold rather than reusing stale state.
func partSignature(part *partition.Part) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	write := func(v int) {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		h.Write(buf[:4])
	}
	write(len(part.TrainPos))
	for _, a := range part.TrainPos {
		write(a.I)
		write(a.J)
	}
	for _, c := range part.Candidates {
		write(c.I)
		write(c.J)
	}
	return h.Sum64()
}
