package distrib

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"github.com/activeiter/activeiter/internal/telemetry"
)

// spanIndex groups a trace's spans for assertions: coordinator spans by
// name, worker spans by name.
func spanIndex(spans []telemetry.SpanData) (coord, worker map[string][]telemetry.SpanData) {
	coord = map[string][]telemetry.SpanData{}
	worker = map[string][]telemetry.SpanData{}
	for _, sp := range spans {
		if sp.Proc == "worker" {
			worker[sp.Name] = append(worker[sp.Name], sp)
		} else {
			coord[sp.Name] = append(coord[sp.Name], sp)
		}
	}
	return coord, worker
}

// TestCoordinatorTracePropagation is the cross-process tracing
// contract: with a Tracer set, a run records a root span, a shard span
// per attempt, and — stitched back off each Done frame — the worker's
// prepare/train/votes spans, every one of which parents under the
// coordinator's shard span whose ID crossed the wire in the Job frame.
func TestCoordinatorTracePropagation(t *testing.T) {
	fx := newDistFixture(t, 3, 12)
	tr := telemetry.NewTracer("coordinator")
	coord := &Coordinator{Transport: Loopback{}, Opts: Options{Train: fx.train, Workers: 2, Tracer: tr}}
	res, _, err := coord.Run(fx.pair, fx.plan, fx.oracle)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAlignment(t, res, fx.ref, fx.plan)

	spans := tr.Spans()
	coordSpans, workerSpans := spanIndex(spans)
	if len(coordSpans["run"]) != 1 {
		t.Fatalf("want exactly one run span, got %d", len(coordSpans["run"]))
	}
	runID := coordSpans["run"][0].ID

	// One shard span per part, parented under the run span.
	shardSpanID := map[uint64]string{}
	for i := range fx.plan.Parts {
		name := fmt.Sprintf("shard %d", fx.plan.Parts[i].Index)
		got := coordSpans[name]
		if len(got) == 0 {
			t.Fatalf("no coordinator span %q", name)
		}
		for _, sp := range got {
			if sp.Parent != runID {
				t.Errorf("%s span parent %#x, want run span %#x", name, sp.Parent, runID)
			}
			shardSpanID[sp.ID] = name
		}
	}

	// Every shard must have a worker-side train span whose parent is one
	// of that shard's coordinator attempt spans.
	if len(workerSpans["train"]) < len(fx.plan.Parts) {
		t.Fatalf("want ≥%d worker train spans, got %d", len(fx.plan.Parts), len(workerSpans["train"]))
	}
	seen := map[string]bool{}
	for _, name := range []string{"prepare", "train", "votes"} {
		for _, sp := range workerSpans[name] {
			parent, ok := shardSpanID[sp.Parent]
			if !ok {
				t.Errorf("worker %s span parent %#x is not a coordinator shard span", name, sp.Parent)
				continue
			}
			if sp.End < sp.Start {
				t.Errorf("worker %s span ends before it starts", name)
			}
			seen[parent] = true
		}
	}
	for i := range fx.plan.Parts {
		name := fmt.Sprintf("shard %d", fx.plan.Parts[i].Index)
		if !seen[name] {
			t.Errorf("no worker span parented under %s", name)
		}
	}
	if len(coordSpans["reconcile"]) != 1 {
		t.Errorf("want one reconcile span, got %d", len(coordSpans["reconcile"]))
	}

	// The Chrome dump must be valid trace-event JSON naming both process
	// rows.
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("chrome dump is not valid JSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"worker"`) || !strings.Contains(buf.String(), `"coordinator"`) {
		t.Error("chrome dump missing process name metadata")
	}
}

// TestSessionTracePropagation checks rounds trace too, including the
// JobRef (delta) path: round spans are roots, and warm cache-hit rounds
// still return worker train spans stitched under the round's shard
// spans.
func TestSessionTracePropagation(t *testing.T) {
	fx := newDistFixture(t, 2, 8)
	tr := telemetry.NewTracer("coordinator")
	plan := fx.freshPlan(t, 8)
	sess, err := NewSession(Loopback{}, fx.pair, Options{Train: fx.train, Workers: 2, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for r := 0; r < 2; r++ {
		res, m, err := sess.Run(plan, fx.oracle)
		if err != nil {
			t.Fatalf("round %d: %v", r+1, err)
		}
		if r == 1 && m.CacheHits == 0 {
			t.Skip("no warm cache hit on round 2; delta path not exercised here")
		}
		if r == 0 {
			plan.AppendLabels(res.QueriedLabels())
		}
	}
	coordSpans, workerSpans := spanIndex(tr.Spans())
	if len(coordSpans["round 0"]) != 1 || len(coordSpans["round 1"]) != 1 {
		t.Fatalf("want one span per round, got %d and %d", len(coordSpans["round 0"]), len(coordSpans["round 1"]))
	}
	// Two rounds × every shard trained on a worker.
	if want := 2 * len(plan.Parts); len(workerSpans["train"]) < want {
		t.Errorf("want ≥%d worker train spans across rounds, got %d", want, len(workerSpans["train"]))
	}
	shardIDs := map[uint64]bool{}
	for name, spans := range coordSpans {
		if strings.HasPrefix(name, "shard ") {
			for _, sp := range spans {
				shardIDs[sp.ID] = true
			}
		}
	}
	for _, sp := range workerSpans["train"] {
		if !shardIDs[sp.Parent] {
			t.Errorf("worker train span parent %#x is not a session shard span", sp.Parent)
		}
	}
}

// TestTracingDoesNotPerturbResults is the telemetry on/off property:
// the same plan run with tracing enabled and disabled must produce
// bit-identical alignments — spans observe the pipeline, they must
// never steer it.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	fx := newDistFixture(t, 3, 12)
	off := &Coordinator{Transport: Loopback{}, Opts: Options{Train: fx.train, Workers: 2}}
	resOff, _, err := off.Run(fx.pair, fx.plan, fx.oracle)
	if err != nil {
		t.Fatal(err)
	}
	on := &Coordinator{Transport: Loopback{}, Opts: Options{Train: fx.train, Workers: 2, Tracer: telemetry.NewTracer("coordinator")}}
	resOn, _, err := on.Run(fx.pair, fx.plan, fx.oracle)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAlignment(t, resOff, fx.ref, fx.plan)
	assertSameAlignment(t, resOn, resOff, fx.plan)
}
