package distrib

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/core"
	"github.com/activeiter/activeiter/internal/datagen"
	"github.com/activeiter/activeiter/internal/eval"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/partition"
	"github.com/activeiter/activeiter/internal/schema"
)

// workerEnv re-executes this test binary as a wire worker — the
// subprocess-transport tests talk to a genuinely separate process
// without needing a prebuilt binary on disk.
const workerEnv = "ACTIVEITER_TEST_WORKER"

// hangEnv re-executes this test binary as a worker that IGNORES the
// shutdown protocol: it drains stdin until close and then sleeps
// forever instead of exiting — the pathological child that Exec's
// kill-after-grace reap exists for.
const hangEnv = "ACTIVEITER_TEST_HANG"

func TestMain(m *testing.M) {
	if os.Getenv(hangEnv) == "1" {
		io.Copy(io.Discard, os.Stdin)
		time.Sleep(time.Hour)
		os.Exit(0)
	}
	if os.Getenv(workerEnv) == "1" {
		err := Serve(struct {
			io.Reader
			io.Writer
		}{os.Stdin, os.Stdout})
		if err != nil && err != io.EOF {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// distFixture builds the tiny pair, a K-shard plan with a non-zero
// budget, and the in-process reference result.
type distFixture struct {
	pair       *hetnet.AlignedPair
	base       *metadiag.Counter
	plan       *partition.Plan
	k          int
	trainPos   []hetnet.Anchor
	candidates []hetnet.Anchor
	oracle     active.Oracle
	train      TrainConfig
	ref        *partition.Result
}

// freshPlan re-plans the fixture's pools — session drivers mutate their
// plan (rebudget, label appends), so every driver needs its own.
// Planning is deterministic: the parts match fx.plan exactly.
func (fx *distFixture) freshPlan(t testing.TB, budget int) *partition.Plan {
	t.Helper()
	plan, err := partition.BuildPlan(fx.base, fx.trainPos, fx.candidates, budget, partition.Config{K: fx.k})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func newDistFixture(t testing.TB, k, budget int) *distFixture {
	t.Helper()
	pair, err := datagen.Generate(datagen.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	n := len(pair.Anchors) / 2
	trainPos := pair.Anchors[:n]
	testPos := pair.Anchors[n:]
	rng := rand.New(rand.NewSource(11))
	neg, err := eval.SampleNegatives(pair, 8*len(pair.Anchors), rng)
	if err != nil {
		t.Fatal(err)
	}
	candidates := append(append([]hetnet.Anchor{}, testPos...), neg...)

	base, err := metadiag.NewCounter(pair)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := partition.BuildPlan(base, trainPos, candidates, budget, partition.Config{K: k})
	if err != nil {
		t.Fatal(err)
	}
	oracle := active.NewTruthOracle(pair)
	var strat active.Strategy
	if budget > 0 {
		strat = active.Conflict{}
	}
	ref, err := partition.Align(base, plan, partition.TrainOptions{
		Features: schema.StandardLibrary().All(),
		Core:     core.Config{Budget: budget, Strategy: strat, Seed: 2019},
	}, oracle)
	if err != nil {
		t.Fatal(err)
	}
	return &distFixture{
		pair: pair, base: base, plan: plan, k: k,
		trainPos: trainPos, candidates: candidates, oracle: oracle,
		train: TrainConfig{FeatureSet: FeaturesFull, Strategy: StrategyConflict, Seed: 2019},
		ref:   ref,
	}
}

// assertSameAlignment compares a distributed result against the
// in-process reference over every pool link: identical predicted
// anchors, labels, query sets and totals.
func assertSameAlignment(t *testing.T, got, want *partition.Result, plan *partition.Plan) {
	t.Helper()
	ga, wa := got.PredictedAnchors(), want.PredictedAnchors()
	if len(ga) != len(wa) {
		t.Fatalf("predicted %d anchors, reference %d", len(ga), len(wa))
	}
	for i := range wa {
		if ga[i] != wa[i] {
			t.Fatalf("anchor %d: %v, reference %v", i, ga[i], wa[i])
		}
	}
	if got.QueryCount() != want.QueryCount() {
		t.Errorf("query count %d, reference %d", got.QueryCount(), want.QueryCount())
	}
	if got.Rejected != want.Rejected {
		t.Errorf("rejected %d, reference %d", got.Rejected, want.Rejected)
	}
	for _, part := range plan.Parts {
		pool := append(append([]hetnet.Anchor{}, part.TrainPos...), part.Candidates...)
		for _, l := range pool {
			gl, gok := got.Label(l.I, l.J)
			wl, wok := want.Label(l.I, l.J)
			if gok != wok || gl != wl {
				t.Fatalf("label(%d,%d) = %v/%v, reference %v/%v", l.I, l.J, gl, gok, wl, wok)
			}
			if got.WasQueried(l.I, l.J) != want.WasQueried(l.I, l.J) {
				t.Fatalf("queried(%d,%d) diverges", l.I, l.J)
			}
			gs, _ := got.Score(l.I, l.J)
			ws, _ := want.Score(l.I, l.J)
			if gs != ws {
				t.Fatalf("score(%d,%d) = %v, reference %v", l.I, l.J, gs, ws)
			}
		}
	}
}

// TestLoopbackMatchesInProcess is the core distributed-equality
// property over the in-process loopback transport, with active
// learning exercising oracle round-trips: shard extraction, wire
// serialization, remote training and streaming reconciliation must
// reproduce partition.Align exactly.
func TestLoopbackMatchesInProcess(t *testing.T) {
	fx := newDistFixture(t, 3, 12)
	coord := &Coordinator{Transport: Loopback{}, Opts: Options{Train: fx.train, Workers: 2}}
	res, metrics, err := coord.Run(fx.pair, fx.plan, fx.oracle)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAlignment(t, res, fx.ref, fx.plan)
	if metrics.Queries != res.QueryCount() {
		t.Errorf("metrics counted %d oracle round-trips, result reports %d", metrics.Queries, res.QueryCount())
	}
	if metrics.JobBytes <= 0 || metrics.ResultBytes <= 0 {
		t.Errorf("metrics did not count wire bytes: %+v", metrics)
	}
	if len(metrics.Shards) != len(fx.plan.Parts) {
		t.Errorf("metrics cover %d shards, want %d", len(metrics.Shards), len(fx.plan.Parts))
	}
}

// TestNoExtractMatchesToo checks the full-pair (NoExtract) path merges
// identically — and costs measurably more bytes on the wire than the
// extracted path, which is the point of shard extraction. NoSeed keeps
// the unseeded job paths under test: with seed shipping on, both modes
// collapse to identical network-free seeded jobs.
func TestNoExtractMatchesToo(t *testing.T) {
	fx := newDistFixture(t, 3, 0)
	extracted := &Coordinator{Transport: Loopback{}, Opts: Options{Train: fx.train, Workers: 2, NoSeed: true}}
	resE, mE, err := extracted.Run(fx.pair, fx.plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	full := &Coordinator{Transport: Loopback{}, Opts: Options{Train: fx.train, Workers: 2, NoExtract: true, NoSeed: true}}
	resF, mF, err := full.Run(fx.pair, fx.plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAlignment(t, resE, fx.ref, fx.plan)
	assertSameAlignment(t, resF, fx.ref, fx.plan)
	if mE.JobBytes >= mF.JobBytes {
		t.Errorf("extraction did not shrink jobs: extracted %d bytes, full %d bytes", mE.JobBytes, mF.JobBytes)
	}
}

// TestSubprocessMatchesInProcess runs the same equality property over
// the Exec transport: each worker is this test binary re-executed in
// worker mode, so shards really cross a process boundary.
func TestSubprocessMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess transport in -short mode")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Skip("cannot locate test binary:", err)
	}
	fx := newDistFixture(t, 3, 12)
	tr := &Exec{
		Cmd:    exe,
		Env:    append(os.Environ(), workerEnv+"=1"),
		Stderr: os.Stderr,
	}
	coord := &Coordinator{Transport: tr, Opts: Options{Train: fx.train, Workers: 2}}
	res, metrics, err := coord.Run(fx.pair, fx.plan, fx.oracle)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAlignment(t, res, fx.ref, fx.plan)
	if metrics.Retries != 0 {
		t.Errorf("unexpected retries: %d", metrics.Retries)
	}
}

// TestTCPMatchesInProcess covers the TCP transport against an
// in-process ListenAndServe worker bound to a loopback port.
func TestTCPMatchesInProcess(t *testing.T) {
	ready := make(chan string, 1)
	go func() {
		if err := ListenAndServe("127.0.0.1:0", ready); err != nil {
			// The listener dying after tests pass is fine; dying before
			// ready would hang the select below.
			t.Log("listener:", err)
		}
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Skip("TCP listener did not come up (sandboxed network?)")
	}
	fx := newDistFixture(t, 2, 6)
	coord := &Coordinator{Transport: NewTCP(addr), Opts: Options{Train: fx.train, Workers: 2}}
	res, _, err := coord.Run(fx.pair, fx.plan, fx.oracle)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAlignment(t, res, fx.ref, fx.plan)
}

// flakyTransport fails its first `failures` dials with a dead
// connection, then delegates — the shard retry path.
type flakyTransport struct {
	inner Transport
	mu    sync.Mutex
	fails int
}

type deadConn struct{}

func (deadConn) Read([]byte) (int, error)  { return 0, io.ErrUnexpectedEOF }
func (deadConn) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }
func (deadConn) Close() error              { return nil }

func (f *flakyTransport) Dial() (io.ReadWriteCloser, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fails > 0 {
		f.fails--
		return deadConn{}, nil
	}
	return f.inner.Dial()
}

// TestCoordinatorRetriesFailedShards: a worker connection dying must
// re-dispatch the shard on a fresh connection, count the retry, and
// still produce the reference alignment (no double votes, no holes).
func TestCoordinatorRetriesFailedShards(t *testing.T) {
	fx := newDistFixture(t, 3, 0)
	tr := &flakyTransport{inner: Loopback{}, fails: 2}
	coord := &Coordinator{Transport: tr, Opts: Options{Train: fx.train, Workers: 2}}
	res, metrics, err := coord.Run(fx.pair, fx.plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAlignment(t, res, fx.ref, fx.plan)
	if metrics.Retries == 0 {
		t.Error("flaky transport produced no retries")
	}
	attempts := 0
	for _, s := range metrics.Shards {
		attempts += s.Attempts
	}
	if attempts <= len(fx.plan.Parts) {
		t.Errorf("attempts %d do not reflect retries over %d shards", attempts, len(fx.plan.Parts))
	}
}

// TestCoordinatorAbortsAfterRetryBudget: a job workers always reject
// (unknown strategy) must exhaust the shard's attempts and surface the
// worker's error.
func TestCoordinatorAbortsAfterRetryBudget(t *testing.T) {
	fx := newDistFixture(t, 2, 0)
	bad := fx.train
	bad.Strategy = "bogus"
	coord := &Coordinator{Transport: Loopback{}, Opts: Options{Train: bad, Workers: 1, Retries: 1}}
	_, _, err := coord.Run(fx.pair, fx.plan, nil)
	if err == nil {
		t.Fatal("run with an unresolvable strategy succeeded")
	}
	if !strings.Contains(err.Error(), "unknown strategy") {
		t.Errorf("error does not carry the worker failure: %v", err)
	}
}

// TestCoordinatorRejectsBudgetWithoutOracle mirrors core.Train's
// guard at the coordination layer, before any job ships.
func TestCoordinatorRejectsBudgetWithoutOracle(t *testing.T) {
	fx := newDistFixture(t, 2, 6)
	coord := &Coordinator{Transport: Loopback{}, Opts: Options{Train: fx.train}}
	if _, _, err := coord.Run(fx.pair, fx.plan, nil); err == nil {
		t.Fatal("budgeted plan without an oracle accepted")
	}
}

// TestServeRejectsVersionSkew: a coordinator speaking a future protocol
// version must be turned away at the handshake.
func TestServeRejectsVersionSkew(t *testing.T) {
	here, there := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- Serve(there) }()
	// Hand-build a Hello frame with a bumped version byte.
	go func() {
		io.Copy(io.Discard, here) // drain the worker's Hello
	}()
	var fr []byte
	{
		buf := &strings.Builder{}
		if err := WriteFrame(struct{ io.Writer }{buf}, FrameHello, &Hello{Role: "coordinator"}); err != nil {
			t.Fatal(err)
		}
		fr = []byte(buf.String())
	}
	fr[6] = Version + 1
	if _, err := here.Write(fr); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !strings.Contains(fmt.Sprint(err), "version mismatch") {
			t.Errorf("worker accepted skewed version: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not reject the skewed handshake")
	}
	here.Close()
}
