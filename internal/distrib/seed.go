// Warm-counter seed shipping. A v4 run re-derived the expensive
// anchor-free count layer (the attribute meta-path products) from
// scratch on every worker for every shard — the dominant cost of the
// distributed gap. A v5 coordinator exports that layer once
// (metadiag.ExportSeed, from the facade's already-warm base counter when
// available), ships it once per connection, and every job after that is
// a few kilobytes of pool indices: the worker forks its seeded counter
// exactly like the in-process PartitionedAligner forks its base, so the
// votes are bit-identical by construction.
//
// The per-connection negotiation is SeedRef → CacheAck(Shard −1) →
// [Seed], before the first job: workers cache installed seeds process-
// wide under the seed fingerprint, so a redial (or a second connection
// of the same run) answers the SeedRef with a hit and ships nothing.
package distrib

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/activeiter/activeiter/internal/framing"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/partition"
)

// SeedRef offers a warm-counter seed to a freshly dialed worker. The
// worker answers with a CacheAck (Shard −1, the no-shard sentinel):
// Hit means it already holds the fingerprint and the Seed body is not
// shipped.
type SeedRef struct {
	Fingerprint uint64
}

// WireSeed is the warm-counter seed body: the ORIGINAL pair's networks
// plus the anchor-free count matrices of the run's feature library. A
// worker installs it once (networks decoded, a counter built and
// seeded) and serves every seeded job of any shard from forks of that
// counter. Entries are independent byte segments on the wire so encode
// and decode parallelize across GOMAXPROCS.
type WireSeed struct {
	Fingerprint uint64
	AnchorType  string
	G1, G2      WireNetwork
	Entries     []metadiag.SeedEntry
	// TraceID/SpanID (v6 tail) carry the coordinator's trace context for
	// the negotiation: the worker logs its install keyed by the trace ID
	// so a cross-process trace correlates with worker-side logs.
	TraceID uint64
	SpanID  uint64
}

// seedFingerprint names a seed by its replay-relevant content: the
// networks, the anchor type, and the feature set whose library the
// entries cover. The count matrices themselves are a deterministic
// function of those inputs, so they stay out of the hash — which is
// what lets a worker that derived the layer locally (or got it from an
// earlier run of the same pair) answer a SeedRef with a hit. Never
// returns 0 (the "unseeded" sentinel).
func seedFingerprint(g1, g2 *WireNetwork, anchorType, featureSet string) uint64 {
	f := &fingerprintHasher{h: fnv.New64a()}
	f.network(g1)
	f.network(g2)
	f.str(anchorType)
	f.str(featureSet)
	if s := f.h.Sum64(); s != 0 {
		return s
	}
	return 1
}

// buildSeed exports the pair's warm-counter seed and pre-encodes its
// frame body once per run. base, when non-nil, must be a counter over
// pair (the facade hands over its own, already warm from planning); nil
// cold-counts — still once per run, not once per shard×worker.
func buildSeed(pair *hetnet.AlignedPair, base *metadiag.Counter, cfg TrainConfig, traceID uint64) (fp uint64, body []byte, err error) {
	feats, err := ResolveFeatures(cfg.FeatureSet)
	if err != nil {
		return 0, nil, err
	}
	if base == nil {
		if base, err = metadiag.NewCounter(pair); err != nil {
			return 0, nil, err
		}
	}
	seed, err := base.ExportSeed(feats)
	if err != nil {
		return 0, nil, err
	}
	ws := &WireSeed{
		AnchorType: string(pair.AnchorType),
		G1:         EncodeNetwork(pair.G1),
		G2:         EncodeNetwork(pair.G2),
		Entries:    seed.Entries,
		// The body is encoded once per run, before any connection exists,
		// so the seed carries the run's trace ID with no per-negotiation
		// span: the worker correlates its install log by trace ID.
		TraceID: traceID,
	}
	ws.Fingerprint = seedFingerprint(&ws.G1, &ws.G2, ws.AnchorType, cfg.FeatureSet)
	// Pre-install the warm counter into this process's seed cache:
	// workers sharing the coordinator's process (loopback, in-process
	// fallback) then answer every SeedRef with a hit and fork the very
	// counter the coordinator already holds — zero bytes shipped, zero
	// re-derivation, and exactly the fork the in-process facade performs.
	// Remote workers are unaffected; the entry is two pointers, not a
	// copy.
	seedCachePut(ws.Fingerprint, &seedEntry{pair: pair, counter: base})
	return ws.Fingerprint, ws.appendBody(nil), nil
}

// negotiateSeed runs the coordinator side of the per-connection seed
// handshake, immediately after Hello and before the first job. body is
// the pre-encoded WireSeed frame body (written through the codec
// directly, so a run encodes its seed exactly once). Returns the bytes
// written and whether the body was actually shipped (false on a
// ref-hit). An error leaves the connection in an unknown state — the
// caller burns it.
func negotiateSeed(conn io.ReadWriter, fp uint64, body []byte) (n int64, shipped bool, err error) {
	cw := &countingWriter{w: conn}
	if err := WriteFrame(cw, FrameSeedRef, &SeedRef{Fingerprint: fp}); err != nil {
		return cw.n, false, err
	}
	var ack CacheAck
	if err := ReadExpect(conn, FrameCacheAck, &ack); err != nil {
		return cw.n, false, err
	}
	if ack.Fingerprint != fp {
		return cw.n, false, fmt.Errorf("distrib: seed ack fingerprint %016x, want %016x", ack.Fingerprint, fp)
	}
	if ack.Hit {
		return cw.n, false, nil
	}
	if err := codec.WriteFrame(cw, byte(FrameSeed), body); err != nil {
		return cw.n, true, fmt.Errorf("distrib: %w", err)
	}
	// Block until the worker confirms the install. Writing the body only
	// proves the bytes left this side; decoding and installing a large
	// seed takes seconds, and if the seed gate opened on write-completion
	// the follower connections would negotiate inside that window, miss
	// the still-empty cache, and re-ship — the exact race the gate
	// exists to close. A failed install surfaces here as the worker's
	// Error frame (ReadExpect converts it), burning the connection
	// during negotiation instead of poisoning the first job stream.
	if err := ReadExpect(conn, FrameCacheAck, &ack); err != nil {
		return cw.n, true, err
	}
	if ack.Fingerprint != fp || !ack.Hit {
		return cw.n, true, fmt.Errorf("distrib: seed install ack %016x hit=%v, want %016x hit", ack.Fingerprint, ack.Hit, fp)
	}
	return cw.n, true, nil
}

// seedGate serializes a run's FIRST seed negotiation. Without it, N
// concurrent fresh dials all offer the seed before any worker has
// finished installing it, and every one misses and ships its own copy
// — N×hundreds-of-MB for workers that share a process (loopback, many
// connections to one TCP worker). With it, the first connection
// negotiates alone; by the time the rest proceed, a shared-process
// worker answers their SeedRef with a hit. Per-process workers
// (subprocess transport) still ship once each, concurrently, after the
// gate opens. Correctness never depends on the dedup: if the first
// negotiation fails, followers simply negotiate on their own.
type seedGate struct {
	mu sync.Mutex
	ch chan struct{}
}

// wait claims the gate: the first caller proceeds immediately and must
// call the returned release when its negotiation finishes (success or
// not); later callers block until then and get a nil release. The
// first negotiation runs under a connection deadline, so the gate
// cannot wedge its followers.
func (g *seedGate) wait() (release func()) {
	g.mu.Lock()
	if g.ch == nil {
		ch := make(chan struct{})
		g.ch = ch
		g.mu.Unlock()
		return func() { close(ch) }
	}
	ch := g.ch
	g.mu.Unlock()
	<-ch
	return nil
}

// NewSeededJob packages a plan part as a seeded wire job: original
// indices throughout, no networks, no inverse maps — the worker
// resolves the pair and counter from the connection's seed.
func NewSeededJob(pair *hetnet.AlignedPair, part *partition.Part, cfg TrainConfig, seedFP uint64) *Job {
	j := &Job{
		Shard:      part.Index,
		SeedFP:     seedFP,
		AnchorType: string(pair.AnchorType),
		TrainPos:   part.TrainPos,
		Candidates: part.Candidates,
		Prelabeled: WireLabels(part.Prelabeled),
		FeatureSet: cfg.FeatureSet,
		Strategy:   cfg.Strategy,
		C:          cfg.C,
		BatchSize:  cfg.BatchSize,
		Exact:      cfg.Exact,
		Budget:     part.Budget,
		Seed:       cfg.Seed,
	}
	if cfg.Threshold != nil {
		j.Threshold = *cfg.Threshold
		j.HasThreshold = true
	}
	return j
}

// seededPart validates a seeded job against the seed's pair and builds
// its part. The job must not carry what the seed already provides.
func (j *Job) seededPart(pair *hetnet.AlignedPair) (*partition.Part, error) {
	if len(j.InvUsers1) != 0 || len(j.InvUsers2) != 0 {
		return nil, fmt.Errorf("distrib: seeded job shard %d carries inverse maps", j.Shard)
	}
	if j.AnchorType != "" && j.AnchorType != string(pair.AnchorType) {
		return nil, fmt.Errorf("distrib: seeded job shard %d anchor type %q, seed has %q", j.Shard, j.AnchorType, pair.AnchorType)
	}
	n1 := pair.G1.NodeCount(pair.AnchorType)
	n2 := pair.G2.NodeCount(pair.AnchorType)
	for _, a := range j.TrainPos {
		if a.I < 0 || a.I >= n1 || a.J < 0 || a.J >= n2 {
			return nil, fmt.Errorf("distrib: seeded job shard %d: anchor (%d,%d) out of range", j.Shard, a.I, a.J)
		}
	}
	for _, c := range j.Candidates {
		if c.I < 0 || c.I >= n1 || c.J < 0 || c.J >= n2 {
			return nil, fmt.Errorf("distrib: seeded job shard %d: candidate (%d,%d) out of range", j.Shard, c.I, c.J)
		}
	}
	for _, l := range j.Prelabeled {
		if l.I < 0 || int(l.I) >= n1 || l.J < 0 || int(l.J) >= n2 {
			return nil, fmt.Errorf("distrib: seeded job shard %d: prelabel (%d,%d) out of range", j.Shard, l.I, l.J)
		}
	}
	return &partition.Part{
		Index:      j.Shard,
		TrainPos:   j.TrainPos,
		Candidates: j.Candidates,
		Budget:     j.Budget,
		Prelabeled: partLabels(j.Prelabeled),
	}, nil
}

// seedEntry is one installed seed on the worker side: the decoded pair
// and a counter whose shared cache holds the seed's matrices. Jobs fork
// the counter; the pair and shared cache are thread-safe, so the entry
// serves every connection of the process.
type seedEntry struct {
	pair    *hetnet.AlignedPair
	counter *metadiag.Counter
}

// DefaultSeedCacheSize bounds the process-wide installed-seed cache. A
// seed holds the full anchor-free count layer of one pair — hundreds of
// megabytes at crawl scale — so the bound is tiny; a worker normally
// serves one pair at a time and an eviction only costs a re-ship.
const DefaultSeedCacheSize = 2

// The installed-seed cache is process-global, not per-connection:
// loopback transports dial many short-lived connections into one
// process, and the whole point is to install once.
var (
	seedMu    sync.Mutex
	seedLRU   []uint64
	seedCache = map[uint64]*seedEntry{}
)

func seedCacheGet(fp uint64) *seedEntry {
	seedMu.Lock()
	defer seedMu.Unlock()
	e := seedCache[fp]
	if e != nil {
		seedTouch(fp)
	}
	return e
}

func seedTouch(fp uint64) {
	for k, f := range seedLRU {
		if f == fp {
			seedLRU = append(append(seedLRU[:k:k], seedLRU[k+1:]...), fp)
			return
		}
	}
	seedLRU = append(seedLRU, fp)
}

func seedCachePut(fp uint64, e *seedEntry) {
	seedMu.Lock()
	defer seedMu.Unlock()
	seedCache[fp] = e
	seedTouch(fp)
	for len(seedCache) > DefaultSeedCacheSize {
		old := seedLRU[0]
		seedLRU = seedLRU[1:]
		delete(seedCache, old)
	}
}

// installSeed decodes and installs a shipped seed: networks decoded and
// validated, an anchor-free pair built, a fresh counter seeded with the
// entries (each structurally validated by SeedInto). Idempotent per
// fingerprint.
func installSeed(ws *WireSeed) error {
	if seedCacheGet(ws.Fingerprint) != nil {
		return nil
	}
	g1, err := ws.G1.Decode()
	if err != nil {
		return err
	}
	g2, err := ws.G2.Decode()
	if err != nil {
		return err
	}
	pair := hetnet.NewAlignedPair(g1, g2)
	if ws.AnchorType != "" {
		pair.AnchorType = hetnet.NodeType(ws.AnchorType)
	}
	// The seed pair carries no anchors on purpose: anchors are per-shard
	// training state (each job's TrainPos, set on the fork), never part
	// of the shared anchor-free layer.
	if err := pair.Validate(); err != nil {
		return fmt.Errorf("distrib: seed pair: %w", err)
	}
	counter, err := metadiag.NewCounter(pair)
	if err != nil {
		return err
	}
	if err := counter.SeedInto(&metadiag.Seed{Entries: ws.Entries}); err != nil {
		return err
	}
	seedCachePut(ws.Fingerprint, &seedEntry{pair: pair, counter: counter})
	logger.Debug("installed warm-counter seed",
		"fingerprint", fmt.Sprintf("%016x", ws.Fingerprint), "trace", fmt.Sprintf("%#x", ws.TraceID))
	return nil
}

// appendSeedEntry encodes one count matrix as a self-contained segment:
// key, shape, per-row column-index deltas (uvarint row length, first
// column absolute, then gaps — strictly increasing columns make every
// gap ≥ 1), then the value run. Counts are exact non-negative integers
// below 2^53 in practice (path multiplicities), so values normally pack
// as uvarints; a flag byte keeps raw float64 as the general-case
// fallback.
func appendSeedEntry(b []byte, e *metadiag.SeedEntry) []byte {
	b = framing.AppendString(b, e.Key)
	b = framing.AppendVarint(b, int64(e.Rows))
	b = framing.AppendVarint(b, int64(e.Cols))
	for r := 0; r < e.Rows; r++ {
		lo, hi := e.RowPtr[r], e.RowPtr[r+1]
		b = framing.AppendUvarint(b, uint64(hi-lo))
		prev := 0
		for k := lo; k < hi; k++ {
			c := e.ColIdx[k]
			b = framing.AppendUvarint(b, uint64(c-prev))
			prev = c
		}
	}
	ints := true
	for _, v := range e.Val {
		if v != math.Trunc(v) || v < 0 || v >= 1<<53 {
			ints = false
			break
		}
	}
	b = framing.AppendBool(b, ints)
	if ints {
		for _, v := range e.Val {
			b = framing.AppendUvarint(b, uint64(v))
		}
	} else {
		for _, v := range e.Val {
			b = framing.AppendFloat64(b, v)
		}
	}
	return b
}

// decodeSeedEntry is the inverse; structural trust is deferred to
// sparse.FromRaw inside SeedInto (shape, monotone rowPtr, in-range
// strictly-increasing columns), so only allocation bounds are enforced
// here.
func decodeSeedEntry(seg []byte) (metadiag.SeedEntry, error) {
	var e metadiag.SeedEntry
	d := framing.NewDec(seg)
	e.Key = d.String()
	e.Rows = d.Int()
	e.Cols = d.Int()
	if d.Err() == nil && (e.Rows < 0 || e.Rows > d.Remaining()) {
		// Each row costs at least its 1-byte length.
		d.Fail("seed row count")
	}
	if d.Err() != nil {
		return e, d.Err()
	}
	rowPtr := make([]int, e.Rows+1)
	var colIdx []int
	nnz := 0
	for r := 0; r < e.Rows && d.Err() == nil; r++ {
		n := d.Uvarint()
		if n > uint64(d.Remaining()) {
			d.Fail("seed row length")
			break
		}
		prev := 0
		for k := uint64(0); k < n; k++ {
			prev += int(d.Uvarint())
			colIdx = append(colIdx, prev)
		}
		nnz += int(n)
		rowPtr[r+1] = nnz
	}
	ints := d.Bool()
	if d.Err() != nil {
		return e, d.Err()
	}
	val := make([]float64, nnz)
	if ints {
		for k := range val {
			val[k] = float64(d.Uvarint())
		}
	} else {
		for k := range val {
			val[k] = d.Float64()
		}
	}
	e.RowPtr, e.ColIdx, e.Val = rowPtr, colIdx, val
	if err := d.Done(); err != nil {
		return e, err
	}
	return e, nil
}

// parallelFor runs f over [0,n) on up to GOMAXPROCS goroutines — seed
// entries encode and decode independently, and on a multi-core worker
// the handful of big matrices dominate the wall clock.
func parallelFor(n int, f func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// WireSeed body: scalars, the two networks, then each entry as an
// independent length-prefixed segment.
func (ws *WireSeed) appendBody(b []byte) []byte {
	b = framing.AppendUvarint(b, ws.Fingerprint)
	b = framing.AppendString(b, ws.AnchorType)
	b = ws.G1.appendTo(b)
	b = ws.G2.appendTo(b)
	b = framing.AppendUvarint(b, uint64(len(ws.Entries)))
	segs := make([][]byte, len(ws.Entries))
	parallelFor(len(ws.Entries), func(i int) {
		segs[i] = appendSeedEntry(nil, &ws.Entries[i])
	})
	for _, seg := range segs {
		b = framing.AppendBytes(b, seg)
	}
	b = framing.AppendUvarint(b, ws.TraceID)
	b = framing.AppendUvarint(b, ws.SpanID)
	return b
}

func (ws *WireSeed) decodeBody(body []byte) error {
	d := framing.NewDec(body)
	ws.Fingerprint = d.Uvarint()
	ws.AnchorType = d.String()
	ws.G1.decodeFrom(d)
	ws.G2.decodeFrom(d)
	n := d.Uvarint()
	if d.Err() == nil && n > uint64(d.Remaining()) {
		d.Fail("seed entry count")
	}
	if d.Err() != nil {
		return fmt.Errorf("distrib: seed frame: %w", d.Err())
	}
	// Slice out the segments serially (cheap), decode them in parallel.
	// Raw views alias the frame body, which is ours alone — ReadFrame
	// allocates a fresh body per frame.
	segs := make([][]byte, n)
	for i := range segs {
		segs[i] = d.Raw()
	}
	ws.TraceID = d.Uvarint()
	ws.SpanID = d.Uvarint()
	if err := d.Done(); err != nil {
		return fmt.Errorf("distrib: seed frame: %w", err)
	}
	ws.Entries = make([]metadiag.SeedEntry, n)
	errs := make([]error, n)
	parallelFor(int(n), func(i int) {
		ws.Entries[i], errs[i] = decodeSeedEntry(segs[i])
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("distrib: seed entry %d: %w", i, err)
		}
	}
	return nil
}
