// Columnar wire codec for the hot frames. Gob's self-describing streams
// cost a type descriptor plus per-field framing on every frame; the
// frames that dominate a run's bytes — Job (networks, pools, inverse
// maps), Votes (the whole candidate pool back), Done (weight vectors),
// JobRef (label deltas) and the warm-counter Seed — encode here as flat
// struct-of-arrays columns over internal/framing primitives instead.
// Index slices become varint columns, float payloads pack as raw
// little-endian runs, and parallel arrays (I/J/Label) are written column
// by column so the varints of like-valued fields sit together.
//
// The layouts are part of the wire contract (Version history in
// wire.go, field tables in docs/WIRE.md): any change to an appendBody /
// decodeBody pair is a protocol version bump. Decoders follow the
// hostile-input discipline of internal/framing — every declared count is
// bounded by the bytes remaining (at the element's minimum encoded
// size) before allocation, parallel columns share one length, and
// trailing bytes fail the decode.
package distrib

import (
	"fmt"

	"github.com/activeiter/activeiter/internal/framing"
	"github.com/activeiter/activeiter/internal/hetnet"
)

// appendAnchors writes an anchor list as an I column then a J column.
func appendAnchors(b []byte, as []hetnet.Anchor) []byte {
	b = framing.AppendUvarint(b, uint64(len(as)))
	for _, a := range as {
		b = framing.AppendVarint(b, int64(a.I))
	}
	for _, a := range as {
		b = framing.AppendVarint(b, int64(a.J))
	}
	return b
}

func decodeAnchors(d *framing.Dec) []hetnet.Anchor {
	n := d.Uvarint()
	if d.Err() != nil || n == 0 {
		return nil
	}
	// Two varint columns: each anchor costs at least 2 bytes.
	if n > uint64(d.Remaining())/2 {
		d.Fail("anchor count")
		return nil
	}
	as := make([]hetnet.Anchor, n)
	for i := range as {
		as[i].I = d.Int()
	}
	for i := range as {
		as[i].J = d.Int()
	}
	return as
}

// appendWireLabels writes a label list as I, J and Label columns.
func appendWireLabels(b []byte, ls []WireLabel) []byte {
	b = framing.AppendUvarint(b, uint64(len(ls)))
	for _, l := range ls {
		b = framing.AppendVarint(b, int64(l.I))
	}
	for _, l := range ls {
		b = framing.AppendVarint(b, int64(l.J))
	}
	for _, l := range ls {
		b = framing.AppendFloat64(b, l.Label)
	}
	return b
}

func decodeWireLabels(d *framing.Dec) []WireLabel {
	n := d.Uvarint()
	if d.Err() != nil || n == 0 {
		return nil
	}
	// Two varint columns plus a packed float64 column: ≥ 10 bytes each.
	if n > uint64(d.Remaining())/10 {
		d.Fail("label count")
		return nil
	}
	ls := make([]WireLabel, n)
	for i := range ls {
		ls[i].I = int32(d.Varint())
	}
	for i := range ls {
		ls[i].J = int32(d.Varint())
	}
	for i := range ls {
		ls[i].Label = d.Float64()
	}
	return ls
}

// appendTo writes the network in its canonical order: name, node tables
// (type name + ID column each), link tables (type/src/dst names + from
// and to index columns each).
func (w *WireNetwork) appendTo(b []byte) []byte {
	b = framing.AppendString(b, w.Name)
	b = framing.AppendUvarint(b, uint64(len(w.NodeTypes)))
	for k := range w.NodeTypes {
		b = framing.AppendString(b, w.NodeTypes[k])
		b = framing.AppendStrings(b, w.NodeIDs[k])
	}
	b = framing.AppendUvarint(b, uint64(len(w.LinkTypes)))
	for k := range w.LinkTypes {
		b = framing.AppendString(b, w.LinkTypes[k])
		b = framing.AppendString(b, w.LinkSrc[k])
		b = framing.AppendString(b, w.LinkDst[k])
		b = framing.AppendInt32s(b, w.LinkFrom[k])
		b = framing.AppendInt32s(b, w.LinkTo[k])
	}
	return b
}

// decodeFrom reads the network tables, reporting failures through the
// cursor's sticky error. Structural validation beyond shape (duplicate
// IDs, link endpoints) stays in WireNetwork.Decode.
func (w *WireNetwork) decodeFrom(d *framing.Dec) {
	w.Name = d.String()
	n := d.Uvarint()
	if d.Err() != nil {
		return
	}
	// Each node table costs ≥ 2 bytes (two counts); same for link
	// tables below at ≥ 5.
	if n > uint64(d.Remaining())/2 {
		d.Fail("node type count")
		return
	}
	for k := uint64(0); k < n && d.Err() == nil; k++ {
		w.NodeTypes = append(w.NodeTypes, d.String())
		w.NodeIDs = append(w.NodeIDs, d.Strings())
	}
	m := d.Uvarint()
	if d.Err() != nil {
		return
	}
	if m > uint64(d.Remaining())/5 {
		d.Fail("link type count")
		return
	}
	for k := uint64(0); k < m && d.Err() == nil; k++ {
		w.LinkTypes = append(w.LinkTypes, d.String())
		w.LinkSrc = append(w.LinkSrc, d.String())
		w.LinkDst = append(w.LinkDst, d.String())
		w.LinkFrom = append(w.LinkFrom, d.Int32s())
		w.LinkTo = append(w.LinkTo, d.Int32s())
	}
}

// Job body: scalars, then (for unseeded jobs only) the two networks,
// then the pool and label columns, then the training configuration.
// A job with a non-zero SeedFP never carries networks or inverse maps —
// the flag byte after SeedFP records which shape was written.
func (j *Job) appendBody(b []byte) []byte {
	b = framing.AppendVarint(b, int64(j.Shard))
	b = framing.AppendUvarint(b, j.Fingerprint)
	b = framing.AppendUvarint(b, j.SeedFP)
	b = framing.AppendBool(b, j.SeedFP == 0)
	if j.SeedFP == 0 {
		b = j.G1.appendTo(b)
		b = j.G2.appendTo(b)
	}
	b = framing.AppendString(b, j.AnchorType)
	b = appendAnchors(b, j.TrainPos)
	b = appendAnchors(b, j.Candidates)
	b = appendWireLabels(b, j.Prelabeled)
	b = framing.AppendInt32s(b, j.InvUsers1)
	b = framing.AppendInt32s(b, j.InvUsers2)
	b = framing.AppendString(b, j.FeatureSet)
	b = framing.AppendString(b, j.Strategy)
	b = framing.AppendFloat64(b, j.C)
	b = framing.AppendFloat64(b, j.Threshold)
	b = framing.AppendBool(b, j.HasThreshold)
	b = framing.AppendVarint(b, int64(j.Budget))
	b = framing.AppendVarint(b, int64(j.BatchSize))
	b = framing.AppendBool(b, j.Exact)
	b = framing.AppendVarint(b, j.Seed)
	// v6 trace-context tail: two uvarints, two bytes total when zero.
	b = framing.AppendUvarint(b, j.TraceID)
	b = framing.AppendUvarint(b, j.SpanID)
	return b
}

func (j *Job) decodeBody(body []byte) error {
	d := framing.NewDec(body)
	j.Shard = d.Int()
	j.Fingerprint = d.Uvarint()
	j.SeedFP = d.Uvarint()
	if d.Bool() {
		j.G1.decodeFrom(d)
		j.G2.decodeFrom(d)
	}
	j.AnchorType = d.String()
	j.TrainPos = decodeAnchors(d)
	j.Candidates = decodeAnchors(d)
	j.Prelabeled = decodeWireLabels(d)
	j.InvUsers1 = d.Int32s()
	j.InvUsers2 = d.Int32s()
	j.FeatureSet = d.String()
	j.Strategy = d.String()
	j.C = d.Float64()
	j.Threshold = d.Float64()
	j.HasThreshold = d.Bool()
	j.Budget = d.Int()
	j.BatchSize = d.Int()
	j.Exact = d.Bool()
	j.Seed = d.Varint()
	j.TraceID = d.Uvarint()
	j.SpanID = d.Uvarint()
	if err := d.Done(); err != nil {
		return fmt.Errorf("distrib: job frame: %w", err)
	}
	return nil
}

// JobRef body: scalars plus the label-delta columns.
func (r *JobRef) appendBody(b []byte) []byte {
	b = framing.AppendVarint(b, int64(r.Shard))
	b = framing.AppendUvarint(b, r.Fingerprint)
	b = appendWireLabels(b, r.AddLabels)
	b = framing.AppendVarint(b, int64(r.Budget))
	b = framing.AppendVarint(b, r.Seed)
	b = framing.AppendUvarint(b, r.TraceID)
	b = framing.AppendUvarint(b, r.SpanID)
	return b
}

func (r *JobRef) decodeBody(body []byte) error {
	d := framing.NewDec(body)
	r.Shard = d.Int()
	r.Fingerprint = d.Uvarint()
	r.AddLabels = decodeWireLabels(d)
	r.Budget = d.Int()
	r.Seed = d.Varint()
	r.TraceID = d.Uvarint()
	r.SpanID = d.Uvarint()
	if err := d.Done(); err != nil {
		return fmt.Errorf("distrib: job-ref frame: %w", err)
	}
	return nil
}

// Votes body: shard, then I/J varint columns, Label/Score packed
// float64 columns, and a one-byte flag column (bit 0 Queried, bit 1
// Fixed).
func (v *Votes) appendBody(b []byte) []byte {
	b = framing.AppendVarint(b, int64(v.Shard))
	b = framing.AppendUvarint(b, uint64(len(v.Votes)))
	for _, x := range v.Votes {
		b = framing.AppendVarint(b, int64(x.I))
	}
	for _, x := range v.Votes {
		b = framing.AppendVarint(b, int64(x.J))
	}
	for _, x := range v.Votes {
		b = framing.AppendFloat64(b, x.Label)
	}
	for _, x := range v.Votes {
		b = framing.AppendFloat64(b, x.Score)
	}
	for _, x := range v.Votes {
		var f byte
		if x.Queried {
			f |= 1
		}
		if x.Fixed {
			f |= 2
		}
		b = append(b, f)
	}
	return b
}

func (v *Votes) decodeBody(body []byte) error {
	d := framing.NewDec(body)
	v.Shard = d.Int()
	n := d.Uvarint()
	if d.Err() == nil && n > 0 {
		// Two varint columns, two packed float64 columns, one flag byte:
		// ≥ 19 bytes per vote.
		if n > uint64(d.Remaining())/19 {
			d.Fail("vote count")
		} else {
			vs := make([]Vote, n)
			for i := range vs {
				vs[i].I = int32(d.Varint())
			}
			for i := range vs {
				vs[i].J = int32(d.Varint())
			}
			for i := range vs {
				vs[i].Label = d.Float64()
			}
			for i := range vs {
				vs[i].Score = d.Float64()
			}
			for i := range vs {
				f := d.Byte()
				if d.Err() == nil && f > 3 {
					d.Fail("vote flags")
					break
				}
				vs[i].Queried = f&1 != 0
				vs[i].Fixed = f&2 != 0
			}
			v.Votes = vs
		}
	}
	if err := d.Done(); err != nil {
		return fmt.Errorf("distrib: votes frame: %w", err)
	}
	return nil
}

// Done body: report scalars, the packed weight vector, then the v6
// worker-span column (count, then per-span ID, Parent, Name, StartNS,
// EndNS — one varint/string group per span; an untraced job writes a
// single zero byte).
func (dn *Done) appendBody(b []byte) []byte {
	b = framing.AppendVarint(b, int64(dn.Shard))
	b = framing.AppendVarint(b, int64(dn.TrainPos))
	b = framing.AppendVarint(b, int64(dn.Candidates))
	b = framing.AppendVarint(b, int64(dn.Budget))
	b = framing.AppendVarint(b, int64(dn.Queries))
	b = framing.AppendVarint(b, dn.ElapsedNS)
	b = framing.AppendFloat64s(b, dn.W)
	b = framing.AppendUvarint(b, uint64(len(dn.Spans)))
	for i := range dn.Spans {
		sp := &dn.Spans[i]
		b = framing.AppendUvarint(b, sp.ID)
		b = framing.AppendUvarint(b, sp.Parent)
		b = framing.AppendString(b, sp.Name)
		b = framing.AppendVarint(b, sp.StartNS)
		b = framing.AppendVarint(b, sp.EndNS)
	}
	return b
}

func (dn *Done) decodeBody(body []byte) error {
	d := framing.NewDec(body)
	dn.Shard = d.Int()
	dn.TrainPos = d.Int()
	dn.Candidates = d.Int()
	dn.Budget = d.Int()
	dn.Queries = d.Int()
	dn.ElapsedNS = d.Varint()
	dn.W = d.Float64s()
	n := d.Uvarint()
	if d.Err() == nil && n > 0 {
		// Two uvarints, a string length, two varints: ≥ 5 bytes per span.
		if n > uint64(d.Remaining())/5 {
			d.Fail("span count")
		} else {
			spans := make([]WireSpan, n)
			for i := range spans {
				spans[i].ID = d.Uvarint()
				spans[i].Parent = d.Uvarint()
				spans[i].Name = d.String()
				spans[i].StartNS = d.Varint()
				spans[i].EndNS = d.Varint()
			}
			dn.Spans = spans
		}
	}
	if err := d.Done(); err != nil {
		return fmt.Errorf("distrib: done frame: %w", err)
	}
	return nil
}
