package distrib

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel wrapped by every fault the ChaosTransport
// injects, so tests (and the coordinator's error accounting) can tell a
// manufactured failure from a real one with errors.Is.
var ErrInjected = errors.New("distrib: injected fault")

// ChaosOptions configures deterministic fault injection. All randomness
// derives from Seed — two ChaosTransports with equal options inject the
// same faults at the same byte offsets on the same dial sequence, which
// is what lets the chaos property tests replay a failure exactly. No
// wall clock is consulted for fault decisions; the only time-dependent
// behavior is the artificial latency itself, and Sleep makes even that
// injectable.
type ChaosOptions struct {
	// Seed drives every fault decision. The per-connection RNG is
	// derived from Seed and the dial ordinal, so concurrent dials do not
	// race over one shared RNG stream.
	Seed int64
	// RefuseRate is the probability that a Dial fails outright with a
	// connection-refused error, before the inner transport is touched.
	RefuseRate float64
	// DropRate is the probability that a successful connection is doomed
	// to die mid-frame: after a random number of I/O operations the next
	// write ships only a partial frame and errors, or the next read
	// errors, exactly as a yanked cable would.
	DropRate float64
	// CorruptRate is the probability that a connection flips one payload
	// byte at a random operation and then keeps going. The CRC-32C frame
	// trailer must convert this into a detected ErrChecksum.
	CorruptRate float64
	// CrashRate is the probability that the connection's far side "dies"
	// mid-shard: the underlying conn is hard-closed from under the
	// stream after a random number of operations.
	CrashRate float64
	// MaxDelay, when positive, adds a per-connection artificial latency
	// of up to MaxDelay (chosen once per conn, applied before every I/O
	// operation) — the straggler generator for hedging tests.
	MaxDelay time.Duration
	// MaxOps bounds the operation ordinal at which a doomed connection's
	// fault fires. Zero means defaultChaosMaxOps. One frame costs ~3
	// operations per side, so the default window covers the handshake,
	// the job send, and the early response stream — the interesting
	// places to die.
	MaxOps int
	// Sleep replaces time.Sleep for the artificial latency; nil uses
	// time.Sleep. Tests pass a recorder or no-op to stay wall-clock
	// free.
	Sleep func(time.Duration)
}

// defaultChaosMaxOps is the fault-window default for ChaosOptions.MaxOps.
const defaultChaosMaxOps = 64

// ChaosStats counts what the transport actually injected, for tests and
// smoke-run grepping. Read with Stats(); fields are totals since
// construction.
type ChaosStats struct {
	Dials     int64 // Dial calls, refused or not
	Refused   int64 // dials failed with connection refused
	Dropped   int64 // connections that died mid-frame
	Corrupted int64 // connections that flipped a payload byte
	Crashed   int64 // connections hard-closed mid-shard
}

// ChaosTransport wraps another Transport with seeded fault injection:
// refused dials, mid-frame drops, byte corruption, artificial latency,
// and hard crashes mid-shard. It exists so the fault-tolerance layer is
// tested against an adversary rather than assumed — the chaos property
// tests demand bit-identical results and no hangs under every fault
// class at once.
//
// Each accepted dial draws one fault plan from a per-dial RNG: at most
// one scripted fault per connection, firing at a random operation
// ordinal. Per-connection (not per-operation) fault probabilities keep
// the math honest: "30% drop rate" means 30% of connections die, not a
// compounding per-read coin that no multi-frame shard could ever
// survive.
type ChaosTransport struct {
	Inner Transport
	Opts  ChaosOptions

	dials atomic.Int64
	stats struct {
		refused, dropped, corrupted, crashed atomic.Int64
	}
}

// Stats returns the injection totals so far.
func (t *ChaosTransport) Stats() ChaosStats {
	return ChaosStats{
		Dials:     t.dials.Load(),
		Refused:   t.stats.refused.Load(),
		Dropped:   t.stats.dropped.Load(),
		Corrupted: t.stats.corrupted.Load(),
		Crashed:   t.stats.crashed.Load(),
	}
}

// ReportWorker forwards health verdicts to the inner transport, so
// quarantine keeps working under chaos wrapping.
func (t *ChaosTransport) ReportWorker(id string, ok bool) {
	if hr, can := t.Inner.(interface{ ReportWorker(string, bool) }); can {
		hr.ReportWorker(id, ok)
	}
}

// splitmix64 is the per-dial seed mixer: a full-avalanche permutation,
// so consecutive dial ordinals land on uncorrelated RNG streams.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Dial implements Transport.
func (t *ChaosTransport) Dial() (io.ReadWriteCloser, error) {
	ord := t.dials.Add(1) - 1
	rng := rand.New(rand.NewSource(int64(splitmix64(uint64(t.Opts.Seed) + splitmix64(uint64(ord))))))
	if rng.Float64() < t.Opts.RefuseRate {
		t.stats.refused.Add(1)
		return nil, fmt.Errorf("%w: connection refused (dial %d)", ErrInjected, ord)
	}
	inner, err := t.Inner.Dial()
	if err != nil {
		return nil, err
	}
	fc := &faultConn{
		inner: inner,
		plan:  t.buildPlan(rng),
		stats: &t.stats,
		sleep: t.Opts.Sleep,
	}
	if fc.sleep == nil {
		fc.sleep = time.Sleep
	}
	// Only advertise deadline support when the inner conn really has it
	// — the coordinator falls back to a watchdog timer otherwise, and a
	// deadline method that silently no-ops would disarm that fallback.
	if dl, can := inner.(deadlineConn); can {
		fc.deadline = dl
	}
	return fc, nil
}

// fault kinds a connection can be doomed with.
const (
	faultNone = iota
	faultDrop
	faultCorrupt
	faultCrash
)

// faultPlan is one connection's scripted fate, drawn at dial time.
type faultPlan struct {
	kind      int
	failAfter int64         // operation ordinal the fault fires at (1-based)
	corruptAt int           // byte offset hint for faultCorrupt
	delay     time.Duration // per-operation artificial latency
}

func (t *ChaosTransport) buildPlan(rng *rand.Rand) faultPlan {
	maxOps := t.Opts.MaxOps
	if maxOps <= 0 {
		maxOps = defaultChaosMaxOps
	}
	p := faultPlan{kind: faultNone, failAfter: int64(1 + rng.Intn(maxOps)), corruptAt: rng.Intn(1 << 16)}
	// One draw picks the fault class from disjoint probability bands, so
	// the configured rates are exact per-connection probabilities.
	r := rng.Float64()
	switch {
	case r < t.Opts.DropRate:
		p.kind = faultDrop
	case r < t.Opts.DropRate+t.Opts.CorruptRate:
		p.kind = faultCorrupt
	case r < t.Opts.DropRate+t.Opts.CorruptRate+t.Opts.CrashRate:
		p.kind = faultCrash
	}
	if t.Opts.MaxDelay > 0 {
		p.delay = time.Duration(rng.Int63n(int64(t.Opts.MaxDelay) + 1))
	}
	return p
}

// deadlineConn is the deadline surface the coordinator probes for;
// net.Conn implementations (TCP, net.Pipe) have it, stdio pipes do not.
type deadlineConn interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// errNoDeadline reports a conn whose transport cannot enforce
// deadlines; callers arm a watchdog timer instead.
var errNoDeadline = errors.New("distrib: transport does not support deadlines")

// faultConn wraps a worker connection with its scripted fault. I/O
// operations (reads and writes jointly) are counted under a mutex; when
// the count reaches the plan's ordinal the fault fires exactly once.
type faultConn struct {
	inner    io.ReadWriteCloser
	plan     faultPlan
	stats    *struct{ refused, dropped, corrupted, crashed atomic.Int64 }
	sleep    func(time.Duration)
	deadline deadlineConn // nil when the inner conn has no deadline support

	ops       atomic.Int64
	closeOnce sync.Once
	closeErr  error
}

// tick advances the operation counter, applies latency, and fires the
// scripted fault when its ordinal arrives. It reports whether this
// operation should corrupt its payload, or the injected error.
func (c *faultConn) tick() (corrupt bool, err error) {
	op := c.ops.Add(1)
	if c.plan.delay > 0 {
		c.sleep(c.plan.delay)
	}
	if op != c.plan.failAfter {
		return false, nil
	}
	switch c.plan.kind {
	case faultDrop:
		c.stats.dropped.Add(1)
		return false, fmt.Errorf("%w: connection dropped mid-frame", ErrInjected)
	case faultCrash:
		c.stats.crashed.Add(1)
		// A crash is the far side dying, not a polite shutdown: hard-close
		// the underlying conn so BOTH directions break, then surface the
		// error on this operation too.
		c.closeInner()
		return false, fmt.Errorf("%w: worker crashed mid-shard", ErrInjected)
	case faultCorrupt:
		c.stats.corrupted.Add(1)
		return true, nil
	}
	return false, nil
}

func (c *faultConn) Read(p []byte) (int, error) {
	corrupt, err := c.tick()
	if err != nil {
		return 0, err
	}
	n, err := c.inner.Read(p)
	if corrupt && n > 0 {
		// Flip one bit in the delivered bytes; XOR with a non-zero mask is
		// guaranteed to change the byte, so the CRC check MUST trip.
		p[c.plan.corruptAt%n] ^= 0x20
	}
	return n, err
}

func (c *faultConn) Write(p []byte) (int, error) {
	corrupt, err := c.tick()
	if err != nil {
		if errors.Is(err, ErrInjected) && c.plan.kind == faultDrop && len(p) > 1 {
			// A real drop is rarely frame-aligned: ship half the buffer so
			// the peer is left holding a truncated frame.
			n, _ := c.inner.Write(p[:len(p)/2])
			return n, err
		}
		return 0, err
	}
	if corrupt && len(p) > 0 {
		q := append([]byte(nil), p...)
		q[c.plan.corruptAt%len(q)] ^= 0x20
		return c.inner.Write(q)
	}
	return c.inner.Write(p)
}

// closeInner routes every close (fault-triggered or caller-triggered)
// through one sync.Once — crash injection and the coordinator's failure
// cleanup would otherwise double-close conns whose Close is not
// idempotent (execConn's second Wait errors).
func (c *faultConn) closeInner() error {
	c.closeOnce.Do(func() { c.closeErr = c.inner.Close() })
	return c.closeErr
}

func (c *faultConn) Close() error { return c.closeInner() }

// SetReadDeadline forwards to the inner conn when it supports
// deadlines, and reports errNoDeadline otherwise so the coordinator
// arms its watchdog instead.
func (c *faultConn) SetReadDeadline(t time.Time) error {
	if c.deadline == nil {
		return errNoDeadline
	}
	return c.deadline.SetReadDeadline(t)
}

// SetWriteDeadline mirrors SetReadDeadline.
func (c *faultConn) SetWriteDeadline(t time.Time) error {
	if c.deadline == nil {
		return errNoDeadline
	}
	return c.deadline.SetWriteDeadline(t)
}

// WorkerID forwards the inner conn's worker identity (TCP conns carry
// their address) so health scoring sees through the chaos wrapper.
func (c *faultConn) WorkerID() string {
	if wc, can := c.inner.(interface{ WorkerID() string }); can {
		return wc.WorkerID()
	}
	return ""
}
