// Telemetry bridge: the distrib fabric's process-wide counters and its
// component logger. The per-run *Metrics audit stays the API for
// callers that want one run's exact numbers; these counters are the
// scrapeable lifetime totals a fleet monitor reads off /metricsz
// (-metrics-listen on experiments and workers).
package distrib

import (
	"github.com/activeiter/activeiter/internal/telemetry"
)

var (
	logger = telemetry.Logger("distrib")

	mRetries     = telemetry.Default.Counter("activeiter_distrib_retries_total", "Shard re-dispatches after failed attempts.")
	mHedges      = telemetry.Default.Counter("activeiter_distrib_hedges_total", "Straggler hedge dispatches (duplicate attempts).")
	mFallbacks   = telemetry.Default.Counter("activeiter_distrib_fallbacks_total", "Shards degraded to the in-process loopback path.")
	mQuarantines = telemetry.Default.Counter("activeiter_distrib_quarantines_total", "Workers benched by the health board.")
	mCacheHits   = telemetry.Default.Counter("activeiter_distrib_cache_hits_total", "JobRef deltas served from a worker's warm shard cache.")
	mCacheMisses = telemetry.Default.Counter("activeiter_distrib_cache_misses_total", "JobRef deltas the worker could not serve warm.")
	mQueries     = telemetry.Default.Counter("activeiter_distrib_oracle_queries_total", "Oracle round-trips answered (including retried attempts).")
	mJobBytes    = telemetry.Default.Counter("activeiter_distrib_job_bytes_total", "Full-Job frame bytes shipped (successful attempts).")
	mDeltaBytes  = telemetry.Default.Counter("activeiter_distrib_delta_bytes_total", "JobRef frame bytes shipped.")
	mSeedBytes   = telemetry.Default.Counter("activeiter_distrib_seed_bytes_total", "Warm-counter seed negotiation bytes written.")
	mSeedShips   = telemetry.Default.Counter("activeiter_distrib_seed_ships_total", "Connections that received a full seed body.")
	mResultBytes = telemetry.Default.Counter("activeiter_distrib_result_bytes_total", "Bytes read back from workers.")
)

// publish folds one completed run's (or round's) audit into the
// process-wide telemetry counters. Called once per Coordinator.Run and
// once per Session.Run round — never on cumulative session totals, so
// nothing double-counts.
func (m *Metrics) publish() {
	if m == nil {
		return
	}
	mRetries.Add(int64(m.Retries))
	mHedges.Add(int64(m.Hedges))
	mFallbacks.Add(int64(m.Fallbacks))
	mCacheHits.Add(int64(m.CacheHits))
	mCacheMisses.Add(int64(m.CacheMisses))
	mQueries.Add(int64(m.Queries))
	mJobBytes.Add(m.JobBytes)
	mDeltaBytes.Add(m.DeltaBytes)
	mSeedBytes.Add(m.SeedBytes)
	mSeedShips.Add(int64(m.SeedShips))
	mResultBytes.Add(m.ResultBytes)
}

// childTracer builds the worker-side tracer for one job, continuing the
// coordinator's trace. Zero trace ID means tracing is off — every span
// call on the resulting nil tracer is a no-op pointer compare.
func childTracer(traceID, spanID uint64) *telemetry.Tracer {
	if traceID == 0 {
		return nil
	}
	return telemetry.NewChildTracer("worker", traceID, spanID)
}

// wireSpans flattens a job's recorded spans for the Done frame tail.
func wireSpans(tr *telemetry.Tracer) []WireSpan {
	spans := tr.Spans()
	if len(spans) == 0 {
		return nil
	}
	out := make([]WireSpan, len(spans))
	for i, sp := range spans {
		out[i] = WireSpan{ID: sp.ID, Parent: sp.Parent, Name: sp.Name, StartNS: sp.Start, EndNS: sp.End}
	}
	return out
}

// ingestWorkerSpans folds the worker-side spans a Done frame carried
// into the run's tracer, on the attempt's track so they nest under the
// coordinator's attempt span in the rendered trace. The spans' parent
// IDs are the wire-propagated coordinator span IDs, so lineage survives
// the process boundary.
func ingestWorkerSpans(tr *telemetry.Tracer, track string, spans []WireSpan) {
	if tr == nil {
		return
	}
	for _, ws := range spans {
		tr.Add(telemetry.SpanData{
			ID:     ws.ID,
			Parent: ws.Parent,
			Name:   ws.Name,
			Proc:   "worker",
			Track:  track,
			Start:  ws.StartNS,
			End:    ws.EndNS,
			Args:   []telemetry.Label{telemetry.L("origin", "worker")},
		})
	}
}
