package distrib

import (
	"io"
	"net"
	"os"
	"sync"
	"testing"

	"github.com/activeiter/activeiter/internal/partition"
)

// runRoundsOnPlan drives a session the way the facade does: split the
// budget across rounds, feed each round's oracle labels back into the
// stable plan, collect per-round metrics. A fresh plan is built per call
// (the driver mutates it between rounds).
func runRoundsOnPlan(t *testing.T, fx *distFixture, transport Transport, deltaMax, rounds, budget, workers int) (*partition.Result, []*Metrics, *Metrics) {
	t.Helper()
	plan := fx.freshPlan(t, budget)
	sess, err := NewSession(transport, fx.pair, Options{
		Train: fx.train, Workers: workers, DeltaMaxLabels: deltaMax,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	var res *partition.Result
	var per []*Metrics
	for r := 0; r < rounds; r++ {
		plan.Rebudget(partition.RoundBudget(budget, rounds, r))
		var m *Metrics
		res, m, err = sess.Run(plan, fx.oracle)
		if err != nil {
			t.Fatalf("round %d: %v", r+1, err)
		}
		per = append(per, m)
		if r < rounds-1 {
			plan.AppendLabels(res.QueriedLabels())
		}
	}
	return res, per, sess.Metrics()
}

// TestSessionDeltaMatchesFullReship is the session's core property: a
// multi-round run shipping JobRef label deltas to warm workers must be
// bit-identical to the same rounds re-shipping every shard as a full
// job — same predicted anchors, labels, scores, query sets — while
// shipping orders of magnitude fewer bytes from round 2 on.
func TestSessionDeltaMatchesFullReship(t *testing.T) {
	fx := newDistFixture(t, 3, 12)
	const rounds = 3
	full, fullPer, _ := runRoundsOnPlan(t, fx, Loopback{}, -1, rounds, 12, 2)
	delta, deltaPer, deltaCum := runRoundsOnPlan(t, fx, Loopback{}, 0, rounds, 12, 2)

	assertSameAlignment(t, delta, full, fx.plan)
	fl, dl := full.QueriedLabels(), delta.QueriedLabels()
	if len(fl) != len(dl) {
		t.Fatalf("queried labels: %d delta vs %d full", len(dl), len(fl))
	}
	for i := range fl {
		if fl[i] != dl[i] {
			t.Fatalf("queried label %d: %+v vs %+v", i, dl[i], fl[i])
		}
	}

	if deltaCum.CacheHits == 0 {
		t.Error("delta session produced no cache hits")
	}
	if deltaCum.CacheMisses != 0 {
		t.Errorf("healthy delta session missed %d times", deltaCum.CacheMisses)
	}
	// Round 1 ships full jobs in both modes; from round 2 the delta
	// session ships only JobRef frames.
	if deltaPer[0].JobBytes == 0 || deltaPer[0].DeltaBytes != 0 {
		t.Errorf("delta round 1 should ship full jobs: %+v", deltaPer[0])
	}
	for r := 1; r < rounds; r++ {
		if deltaPer[r].JobBytes != 0 {
			t.Errorf("delta round %d re-shipped %d full-job bytes", r+1, deltaPer[r].JobBytes)
		}
		if deltaPer[r].DeltaBytes == 0 {
			t.Errorf("delta round %d shipped no JobRef bytes", r+1)
		}
		if deltaPer[r].DeltaBytes*2 > fullPer[r].JobBytes {
			t.Errorf("round %d: delta %d bytes is not under half of full re-ship %d bytes",
				r+1, deltaPer[r].DeltaBytes, fullPer[r].JobBytes)
		}
	}
}

// TestSessionSubprocessDelta runs the delta-vs-full property across a
// real process boundary: the workers are this test binary re-executed in
// worker mode, and their caches live in genuinely separate memory.
func TestSessionSubprocessDelta(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess transport in -short mode")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Skip("cannot locate test binary:", err)
	}
	fx := newDistFixture(t, 3, 12)
	tr := &Exec{Cmd: exe, Env: append(os.Environ(), workerEnv+"=1"), Stderr: os.Stderr}
	full, _, _ := runRoundsOnPlan(t, fx, Loopback{}, -1, 2, 12, 2)
	delta, deltaPer, deltaCum := runRoundsOnPlan(t, fx, tr, 0, 2, 12, 2)
	assertSameAlignment(t, delta, full, fx.plan)
	if deltaCum.CacheHits == 0 {
		t.Error("subprocess delta session produced no cache hits")
	}
	if deltaPer[1].JobBytes != 0 {
		t.Errorf("subprocess round 2 re-shipped %d full-job bytes", deltaPer[1].JobBytes)
	}
}

// trackingTransport records every dialed connection so a test can kill
// them out from under the session — the worker-restart-between-rounds
// scenario.
type trackingTransport struct {
	inner Transport
	mu    sync.Mutex
	conns []io.ReadWriteCloser
}

func (tt *trackingTransport) Dial() (io.ReadWriteCloser, error) {
	c, err := tt.inner.Dial()
	if err != nil {
		return nil, err
	}
	tt.mu.Lock()
	tt.conns = append(tt.conns, c)
	tt.mu.Unlock()
	return c, nil
}

func (tt *trackingTransport) killAll() {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	for _, c := range tt.conns {
		c.Close()
	}
	tt.conns = nil
}

// TestSessionWorkerRestartFallsBack: every worker dying between rounds
// must not break the session — the next round redials, the JobRef path
// is skipped (nothing is held warm), shards re-ship cold, and the result
// still matches the full-reship reference.
func TestSessionWorkerRestartFallsBack(t *testing.T) {
	fx := newDistFixture(t, 3, 12)
	full, _, _ := runRoundsOnPlan(t, fx, Loopback{}, -1, 2, 12, 2)

	tt := &trackingTransport{inner: Loopback{}}
	plan := fx.freshPlan(t, 12)
	sess, err := NewSession(tt, fx.pair, Options{Train: fx.train, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	plan.Rebudget(6)
	res, _, err := sess.Run(plan, fx.oracle)
	if err != nil {
		t.Fatal(err)
	}
	plan.AppendLabels(res.QueriedLabels())
	tt.killAll() // all workers "restart" between rounds
	plan.Rebudget(6)
	res, m2, err := sess.Run(plan, fx.oracle)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAlignment(t, res, full, fx.plan)
	if m2.Retries == 0 {
		t.Error("killed connections produced no retries")
	}
	if m2.CacheHits != 0 {
		t.Errorf("restarted workers served %d cache hits", m2.CacheHits)
	}
	if m2.JobBytes == 0 {
		t.Error("round 2 after restart shipped no full jobs")
	}
}

// cacheLoopback is Loopback with an explicit worker cache capacity.
type cacheLoopback struct{ size int }

func (c cacheLoopback) Dial() (io.ReadWriteCloser, error) {
	here, there := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer there.Close()
		_ = ServeCache(there, c.size)
	}()
	return &loopbackConn{Conn: here, done: done}, nil
}

// TestSessionCacheEvictionFallsBack: a worker whose cache holds one
// shard while serving two must answer round-2 JobRefs with misses (each
// shard evicted the other), and the session must re-ship full jobs and
// still match the reference.
func TestSessionCacheEvictionFallsBack(t *testing.T) {
	fx := newDistFixture(t, 3, 0)
	full, _, _ := runRoundsOnPlan(t, fx, Loopback{}, -1, 2, 0, 1)
	res, per, cum := runRoundsOnPlan(t, fx, cacheLoopback{size: 1}, 0, 2, 0, 1)
	assertSameAlignment(t, res, full, fx.plan)
	if cum.CacheMisses == 0 {
		t.Error("size-1 worker cache under 3 shards produced no misses")
	}
	if per[1].JobBytes == 0 {
		t.Error("evicted shards were not re-shipped as full jobs")
	}
	// The last shard of round 1 survives in the size-1 cache and round 2
	// visits shards in the same order, so by the time its JobRef arrives
	// it has been evicted again: every JobRef misses.
	if cum.CacheHits != 0 {
		t.Errorf("expected pure misses from the thrashing cache, got %d hits", cum.CacheHits)
	}
}

// TestSessionNoCacheWorkerFallsBack: workers running with caching
// disabled (ServeCache size 0) answer every JobRef with a miss; the
// session must degrade to full re-ship every round, correctly.
func TestSessionNoCacheWorkerFallsBack(t *testing.T) {
	fx := newDistFixture(t, 2, 6)
	full, _, _ := runRoundsOnPlan(t, fx, Loopback{}, -1, 2, 6, 2)
	res, _, cum := runRoundsOnPlan(t, fx, cacheLoopback{size: 0}, 0, 2, 6, 2)
	assertSameAlignment(t, res, full, fx.plan)
	if cum.CacheHits != 0 {
		t.Errorf("cache-disabled workers served %d hits", cum.CacheHits)
	}
	if cum.CacheMisses == 0 {
		t.Error("cache-disabled workers produced no misses")
	}
}

// TestSessionOversizedDeltaFallsBack: a delta larger than
// DeltaMaxLabels must re-ship the full job instead of a JobRef — and
// still produce the reference alignment.
func TestSessionOversizedDeltaFallsBack(t *testing.T) {
	fx := newDistFixture(t, 3, 12)
	full, _, _ := runRoundsOnPlan(t, fx, Loopback{}, -1, 2, 12, 2)
	res, per, cum := runRoundsOnPlan(t, fx, Loopback{}, 1, 2, 12, 2)
	assertSameAlignment(t, res, full, fx.plan)
	// Round 1 spends 6 queries across 3 shards; at least one shard
	// accumulates a delta over the 1-label cap and must go back cold.
	if per[1].JobBytes == 0 {
		t.Error("oversized deltas were not re-shipped as full jobs")
	}
	if cum.CacheMisses != 0 {
		t.Errorf("oversized-delta fallback is not a cache miss, counted %d", cum.CacheMisses)
	}
}

// TestWorkerFingerprintCollisionMisses drives the wire directly: a
// JobRef whose fingerprint resolves to a DIFFERENT shard's cached state
// (an engineered collision) must miss — reusing it would train the wrong
// shard — while the rightful shard still hits.
func TestWorkerFingerprintCollisionMisses(t *testing.T) {
	here, there := net.Pipe()
	served := make(chan error, 1)
	go func() { served <- Serve(there) }()
	defer here.Close()

	if err := WriteFrame(here, FrameHello, &Hello{Role: "coordinator"}); err != nil {
		t.Fatal(err)
	}
	if err := ReadExpect(here, FrameHello, &Hello{}); err != nil {
		t.Fatal(err)
	}

	job := fixtureJob(t)
	job.Budget = 0 // no oracle round-trips to answer by hand
	job.Fingerprint = 42
	if err := WriteFrame(here, FrameJob, job); err != nil {
		t.Fatal(err)
	}
	drainToDone(t, here)

	// Same fingerprint, wrong shard index: the collision defense.
	if err := WriteFrame(here, FrameJobRef, &JobRef{Shard: job.Shard + 1, Fingerprint: 42}); err != nil {
		t.Fatal(err)
	}
	var ack CacheAck
	if err := ReadExpect(here, FrameCacheAck, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Hit {
		t.Fatal("colliding fingerprint with mismatched shard index served a cache hit")
	}

	// The rightful owner still hits and re-runs warm.
	if err := WriteFrame(here, FrameJobRef, &JobRef{Shard: job.Shard, Fingerprint: 42}); err != nil {
		t.Fatal(err)
	}
	if err := ReadExpect(here, FrameCacheAck, &ack); err != nil {
		t.Fatal(err)
	}
	if !ack.Hit {
		t.Fatal("rightful fingerprint owner missed")
	}
	drainToDone(t, here)

	here.Close()
	if err := <-served; err != nil && err != io.EOF {
		t.Fatalf("worker serve loop: %v", err)
	}
}

// drainToDone consumes a shard response stream until its Done frame,
// failing the test on an Error frame.
func drainToDone(t *testing.T, conn io.ReadWriter) {
	t.Helper()
	for {
		typ, body, err := ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		switch typ {
		case FrameDone:
			return
		case FrameError:
			var je JobError
			_ = DecodeBody(body, &je)
			t.Fatalf("worker failed: %s", je.Msg)
		}
	}
}
