package distrib

import (
	"bytes"
	"encoding/gob"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/activeiter/activeiter/internal/framing"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/partition"
)

var update = flag.Bool("update", false, "rewrite golden wire files")

// fixturePair builds a small deterministic pair: follows, posts,
// timestamps and check-ins on both sides with overlapping attribute
// values.
func fixturePair(t testing.TB) *hetnet.AlignedPair {
	t.Helper()
	build := func(name string, shift int) *hetnet.Network {
		g := hetnet.NewSocialNetwork(name)
		for u := 0; u < 8; u++ {
			g.AddNode(hetnet.User, fmt.Sprintf("%s-u%d", name, u))
		}
		for u := 0; u < 8; u++ {
			if err := g.AddLinkByID(hetnet.Follow, fmt.Sprintf("%s-u%d", name, u), fmt.Sprintf("%s-u%d", name, (u+1+shift)%8)); err != nil {
				t.Fatal(err)
			}
		}
		for u := 0; u < 8; u++ {
			post := fmt.Sprintf("%s-p%d", name, u)
			if err := g.AddLinkByID(hetnet.Write, fmt.Sprintf("%s-u%d", name, u), post); err != nil {
				t.Fatal(err)
			}
			// Shared attribute vocabularies: plain t%d / l%d IDs join
			// across networks.
			if err := g.AddLinkByID(hetnet.At, post, fmt.Sprintf("t%d", (u+shift)%4)); err != nil {
				t.Fatal(err)
			}
			if err := g.AddLinkByID(hetnet.Checkin, post, fmt.Sprintf("l%d", u%3)); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	pair := hetnet.NewAlignedPair(build("net1", 0), build("net2", 1))
	for u := 0; u < 4; u++ {
		if err := pair.AddAnchor(u, u); err != nil {
			t.Fatal(err)
		}
	}
	return pair
}

// fixtureJob extracts shard 1 of a two-part split of the fixture pair.
func fixtureJob(t testing.TB) *Job {
	t.Helper()
	pair := fixturePair(t)
	part := &partition.Part{
		Index:      1,
		TrainPos:   []hetnet.Anchor{{I: 0, J: 0}, {I: 1, J: 1}},
		Candidates: []hetnet.Anchor{{I: 4, J: 5}, {I: 5, J: 4}, {I: 6, J: 6}},
		Budget:     3,
	}
	shard, err := partition.ExtractShard(pair, part)
	if err != nil {
		t.Fatal(err)
	}
	half := 0.5
	job := NewJob(shard, TrainConfig{
		FeatureSet: FeaturesFull,
		Strategy:   StrategyConflict,
		C:          1,
		Threshold:  &half,
		BatchSize:  5,
		Seed:       2019,
	})
	// Session fields ride on the same frame: a prelabel from an earlier
	// round (a pool candidate the oracle answered) and the shard-stable
	// fingerprint.
	job.Prelabeled = []WireLabel{{I: 4, J: 5, Label: 1}}
	job.Fingerprint = job.ComputeFingerprint()
	// Trace context rides the v6 tail; it is per-attempt state, so it
	// must not perturb the fingerprint computed above.
	job.TraceID = 0x1122334455667788
	job.SpanID = 0x99aabbcc
	return job
}

// fixtureSeed builds the fixture pair's warm-counter seed through the
// real coordinator path (cold count, export, encode) and decodes it
// back, so the golden pins exactly what a run would ship.
func fixtureSeed(t testing.TB) *WireSeed {
	t.Helper()
	_, body, err := buildSeed(fixturePair(t), nil, TrainConfig{FeatureSet: FeaturesFull}, 0x1122334455667788)
	if err != nil {
		t.Fatal(err)
	}
	var ws WireSeed
	if err := ws.decodeBody(body); err != nil {
		t.Fatal(err)
	}
	return &ws
}

// goldenFrames enumerates every frame type with a representative
// payload, the corpus the golden files pin.
func goldenFrames(t testing.TB) []struct {
	name    string
	typ     FrameType
	payload any
} {
	return []struct {
		name    string
		typ     FrameType
		payload any
	}{
		{"hello", FrameHello, &Hello{Role: "coordinator"}},
		{"job", FrameJob, fixtureJob(t)},
		{"votes", FrameVotes, &Votes{Shard: 1, Votes: []Vote{
			{I: 4, J: 5, Label: 1, Score: 0.91},
			{I: 5, J: 4, Label: 0, Score: 0.12, Queried: true},
			{I: 0, J: 0, Label: 1, Score: 0.99, Fixed: true},
		}}},
		{"progress", FrameProgress, &Progress{Shard: 1, Stage: "training", Queries: 2}},
		{"query", FrameQuery, &Query{Shard: 1, Seq: 7, I: 4, J: 5}},
		{"answer", FrameAnswer, &Answer{Seq: 7, Label: 1}},
		{"done", FrameDone, &Done{Shard: 1, TrainPos: 2, Candidates: 3, Budget: 3, Queries: 3, ElapsedNS: 12345678,
			W: []float64{0.25, -0.5, 1.0, 0.0625},
			Spans: []WireSpan{
				{ID: 0xdead0001, Parent: 0x99aabbcc, Name: "prepare", StartNS: 1700000000_000000000, EndNS: 1700000000_001000000},
				{ID: 0xdead0002, Parent: 0x99aabbcc, Name: "train", StartNS: 1700000000_001000000, EndNS: 1700000000_009000000},
			}}},
		{"error", FrameError, &JobError{Shard: 1, Msg: "boom"}},
		{"jobref", FrameJobRef, &JobRef{Shard: 1, Fingerprint: 0xfeedc0dedeadbeef,
			AddLabels: []WireLabel{{I: 4, J: 5, Label: 1}, {I: 5, J: 4, Label: 0}}, Budget: 2, Seed: 2019 + roundSeedStride,
			TraceID: 0x1122334455667788, SpanID: 0x99aabbcd}},
		{"cacheack", FrameCacheAck, &CacheAck{Shard: 1, Fingerprint: 0xfeedc0dedeadbeef, Hit: true}},
		{"cancel", FrameCancel, &Cancel{Shard: 1}},
		{"seedref", FrameSeedRef, &SeedRef{Fingerprint: 0x1badd00dcafef00d}},
		{"seed", FrameSeed, fixtureSeed(t)},
	}
}

// TestWireGolden pins wire compatibility against recorded frames: every
// golden file holds bytes a Version-1 coordinator/worker actually wrote,
// and the current reader must still decode each one into the expected
// payload. Any change that breaks decoding (field rename or retype,
// header layout, encoder swap) fails here and forces a deliberate
// Version bump — regenerate with -update after bumping. Byte-for-byte
// re-encoding is deliberately NOT asserted: gob assigns wire type IDs
// from a process-global counter, so equal payloads can encode with
// different (self-describing, mutually decodable) type IDs depending on
// encode history.
func TestWireGolden(t *testing.T) {
	for _, tc := range goldenFrames(t) {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join("testdata", "frame_"+tc.name+".golden")
			if *update {
				var buf bytes.Buffer
				if err := WriteFrame(&buf, tc.typ, tc.payload); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			typ, body, err := ReadFrame(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("golden frame unreadable — wire format changed without a Version bump: %v", err)
			}
			if typ != tc.typ {
				t.Fatalf("golden frame type %d, want %d", typ, tc.typ)
			}
			// Decode into a fresh value of the payload's type and compare
			// structurally. The expected payload is normalized through one
			// encode/decode cycle first: gob flattens empty slices to nil,
			// and that normalization is part of the format, not a change.
			got := reflect.New(reflect.TypeOf(tc.payload).Elem()).Interface()
			if err := DecodeBody(body, got); err != nil {
				t.Fatalf("golden payload undecodable — bump Version and regenerate with -update: %v", err)
			}
			var norm bytes.Buffer
			if err := WriteFrame(&norm, tc.typ, tc.payload); err != nil {
				t.Fatal(err)
			}
			_, normBody, err := ReadFrame(&norm)
			if err != nil {
				t.Fatal(err)
			}
			want := reflect.New(reflect.TypeOf(tc.payload).Elem()).Interface()
			if err := DecodeBody(normBody, want); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("golden payload decodes differently:\n got: %+v\nwant: %+v", got, want)
			}
		})
	}
}

// TestWireRoundTrip decodes each golden frame and checks the payloads
// survive: the job's sub-pair rebuilds into a valid aligned pair whose
// pool links translate back through the inverse maps, and scored votes
// round-trip exactly.
func TestWireRoundTrip(t *testing.T) {
	for _, tc := range goldenFrames(t) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, tc.typ, tc.payload); err != nil {
			t.Fatal(err)
		}
		typ, body, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if typ != tc.typ {
			t.Fatalf("%s: type %d, want %d", tc.name, typ, tc.typ)
		}
		switch tc.name {
		case "job":
			var j Job
			if err := DecodeBody(body, &j); err != nil {
				t.Fatal(err)
			}
			orig := tc.payload.(*Job)
			pair, part, err := j.DecodeShard()
			if err != nil {
				t.Fatal(err)
			}
			if got := pair.G1.NodeCount(hetnet.User); got != len(orig.InvUsers1) {
				t.Errorf("job round-trip: G1 has %d users, want %d", got, len(orig.InvUsers1))
			}
			if len(part.Candidates) != len(orig.Candidates) {
				t.Errorf("job round-trip: %d candidates, want %d", len(part.Candidates), len(orig.Candidates))
			}
			if j.Budget != orig.Budget || j.Seed != orig.Seed || !j.HasThreshold || j.Threshold != 0.5 {
				t.Errorf("job round-trip: training config mangled: %+v", j)
			}
		case "votes":
			var v Votes
			if err := DecodeBody(body, &v); err != nil {
				t.Fatal(err)
			}
			orig := tc.payload.(*Votes)
			if len(v.Votes) != len(orig.Votes) {
				t.Fatalf("votes round-trip: %d votes, want %d", len(v.Votes), len(orig.Votes))
			}
			for k := range v.Votes {
				if v.Votes[k] != orig.Votes[k] {
					t.Errorf("vote %d round-trip: %+v, want %+v", k, v.Votes[k], orig.Votes[k])
				}
			}
		}
	}
}

// TestWireVersionMismatch is the rejection contract: a frame of any
// other protocol version must fail with ErrVersionMismatch, before any
// payload decoding.
func TestWireVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameHello, &Hello{Role: "worker"}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[6] = Version + 1 // version byte lives after the 4-byte length + 2-byte magic
	_, _, err := ReadFrame(bytes.NewReader(raw))
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("got %v, want ErrVersionMismatch", err)
	}
}

// TestWireV4Skew pins the cross-version contract the v5 codec bump
// leans on: a well-formed v4 frame — gob body, valid CRC, only the
// version byte differs — must fail with ErrVersionMismatch before any
// payload decoding. A v4 Job body is gob where v5 expects columnar
// bytes; without the version gate it would be fed to the columnar
// decoder and mis-decode instead of failing loudly.
func TestWireV4Skew(t *testing.T) {
	v4 := framing.Codec{Magic: [2]byte{'A', 'I'}, Version: 4, MaxFrame: maxFrameSize, Checksum: true}
	for _, tc := range []struct {
		name string
		typ  FrameType
		body any
	}{
		{"hello", FrameHello, &Hello{Role: "worker"}},
		{"job", FrameJob, fixtureJob(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var body bytes.Buffer
			if err := gob.NewEncoder(&body).Encode(tc.body); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := v4.WriteFrame(&buf, byte(tc.typ), body.Bytes()); err != nil {
				t.Fatal(err)
			}
			_, _, err := ReadFrame(&buf)
			if !errors.Is(err, ErrVersionMismatch) {
				t.Fatalf("v4 frame: got %v, want ErrVersionMismatch", err)
			}
		})
	}
}

// TestWireV5Skew pins the v6 bump's cross-version contract: a
// well-formed v5 frame — same columnar body layout minus the trace
// tail, valid CRC — must fail with ErrVersionMismatch before payload
// decoding. Without the version gate a v5 Job body would reach the v6
// decoder, which demands the TraceID/SpanID tail and would mis-read the
// frame (or, worse, accept a truncated interpretation) instead of
// failing loudly.
func TestWireV5Skew(t *testing.T) {
	v5 := framing.Codec{Magic: [2]byte{'A', 'I'}, Version: 5, MaxFrame: maxFrameSize, Checksum: true}
	job := fixtureJob(t)
	// A v5 writer had no trace fields; its body ended where the v6 tail
	// begins. Encode with zero trace context and drop the two 1-byte
	// zero uvarints to reproduce the exact v5 body.
	job.TraceID, job.SpanID = 0, 0
	v5Body := job.appendBody(nil)
	v5Body = v5Body[:len(v5Body)-2]
	var buf bytes.Buffer
	if err := v5.WriteFrame(&buf, byte(FrameJob), v5Body); err != nil {
		t.Fatal(err)
	}
	_, _, err := ReadFrame(&buf)
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("v5 frame: got %v, want ErrVersionMismatch", err)
	}

	// And the inverse skew: a v6 frame offered to a v5 reader is refused
	// the same way — the gate cuts both directions.
	var v6buf bytes.Buffer
	if err := WriteFrame(&v6buf, FrameHello, &Hello{Role: "worker"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := v5.ReadFrame(&v6buf); !errors.Is(err, framing.ErrVersionMismatch) {
		t.Fatalf("v6 frame at v5 reader: got %v, want ErrVersionMismatch", err)
	}
}

// TestWireDetectsCorruption is the integrity contract behind the chaos
// tolerance story: flipping ANY payload byte of a frame must surface as
// ErrChecksum, never as a silently different decoded value. Without the
// CRC-32C trailer a flipped byte inside a gob-encoded vote score would
// decode cleanly and poison the merged alignment.
func TestWireDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameVotes, &Votes{Shard: 1, Votes: []Vote{{I: 4, J: 5, Label: 1, Score: 0.91}}}); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// Every body byte (between the 8-byte header and the 4-byte trailer),
	// and every trailer byte, must trip the check when flipped.
	for off := 8; off < len(good); off++ {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x40
		_, _, err := ReadFrame(bytes.NewReader(bad))
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("flipped byte %d: got %v, want ErrChecksum", off, err)
		}
	}
	// The pristine frame still reads.
	if _, _, err := ReadFrame(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
}

// TestWireRejectsGarbage covers the fail-fast paths: bad magic,
// oversized length prefix, truncated body.
func TestWireRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameHello, &Hello{Role: "worker"}); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	bad := append([]byte(nil), good...)
	bad[4] = 'X'
	if _, _, err := ReadFrame(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}

	huge := append([]byte(nil), good...)
	huge[0], huge[1], huge[2], huge[3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := ReadFrame(bytes.NewReader(huge)); err == nil {
		t.Error("oversized length accepted")
	}

	if _, _, err := ReadFrame(bytes.NewReader(good[:len(good)-3])); err == nil {
		t.Error("truncated body accepted")
	}

	if _, _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Error("empty stream should be io.EOF")
	}
}
