package distrib

import (
	"net"
	"strings"
	"testing"

	"github.com/activeiter/activeiter/internal/framing"
	"github.com/activeiter/activeiter/internal/metadiag"
)

// TestColumnarEmptyRoundTrip pins the degenerate shapes the columnar
// codec must distinguish from corruption: empty vote batches, a Done
// with no weights, a seeded job whose optional columns are all empty.
func TestColumnarEmptyRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		enc  interface{ appendBody([]byte) []byte }
		dec  frameDecoder
	}{
		{"votes", &Votes{Shard: 3}, &Votes{}},
		{"done", &Done{Shard: 2}, &Done{}},
		{"jobref", &JobRef{Shard: 1, Fingerprint: 7}, &JobRef{}},
		{"seeded-job", &Job{Shard: 0, SeedFP: 9, Budget: 1}, &Job{}},
	} {
		body := tc.enc.appendBody(nil)
		if err := tc.dec.decodeBody(body); err != nil {
			t.Errorf("%s: empty round-trip rejected: %v", tc.name, err)
		}
	}
}

// TestColumnarRejectsTrailingBytes: every hot-frame decoder must reject
// a body with unconsumed bytes — a length desync must not pass as a
// shorter valid frame.
func TestColumnarRejectsTrailingBytes(t *testing.T) {
	for _, tc := range []struct {
		name string
		enc  interface{ appendBody([]byte) []byte }
		dec  func() frameDecoder
	}{
		{"job", fixtureJob(t), func() frameDecoder { return &Job{} }},
		{"votes", &Votes{Shard: 1, Votes: []Vote{{I: 1, J: 2, Label: 1, Score: 0.5}}}, func() frameDecoder { return &Votes{} }},
		{"done", &Done{Shard: 1, W: []float64{1, 2}}, func() frameDecoder { return &Done{} }},
		{"jobref", &JobRef{Shard: 1, Fingerprint: 7}, func() frameDecoder { return &JobRef{} }},
		{"seed", fixtureSeed(t), func() frameDecoder { return &WireSeed{} }},
	} {
		body := tc.enc.appendBody(nil)
		if err := tc.dec().decodeBody(body); err != nil {
			t.Fatalf("%s: pristine body rejected: %v", tc.name, err)
		}
		if err := tc.dec().decodeBody(append(body, 0)); err == nil {
			t.Errorf("%s: trailing byte accepted", tc.name)
		}
	}
}

// TestColumnarTruncationNeverPanics walks every prefix of each hot
// frame's body through its decoder: truncation must surface as an
// error, never a panic or a silent success.
func TestColumnarTruncationNeverPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		enc  interface{ appendBody([]byte) []byte }
		dec  func() frameDecoder
	}{
		{"job", fixtureJob(t), func() frameDecoder { return &Job{} }},
		{"votes", &Votes{Shard: 1, Votes: []Vote{{I: 4, J: 5, Label: 1, Score: 0.91, Queried: true}}}, func() frameDecoder { return &Votes{} }},
		{"done", &Done{Shard: 1, Queries: 3, W: []float64{0.25, -1}}, func() frameDecoder { return &Done{} }},
		{"seed", fixtureSeed(t), func() frameDecoder { return &WireSeed{} }},
	} {
		body := tc.enc.appendBody(nil)
		for cut := 0; cut < len(body); cut++ {
			if err := tc.dec().decodeBody(body[:cut:cut]); err == nil {
				t.Errorf("%s: truncation at %d/%d accepted", tc.name, cut, len(body))
			}
		}
	}
}

// TestVotesRejectsUnknownFlags: the vote flag byte has two defined bits
// (Queried, Fixed); any other bit set must be rejected, reserving the
// space for future versions instead of silently dropping it.
func TestVotesRejectsUnknownFlags(t *testing.T) {
	body := (&Votes{Shard: 1, Votes: []Vote{{I: 1, J: 2, Label: 1, Score: 0.5}}}).appendBody(nil)
	// The flag column is the last byte of a one-vote body.
	body[len(body)-1] = 4
	var v Votes
	if err := v.decodeBody(body); err == nil || !strings.Contains(err.Error(), "vote flags") {
		t.Fatalf("flag byte 4: got %v, want vote-flags error", err)
	}
}

// TestSeedEntryRejectsHugeCounts: claimed row counts far beyond the
// actual bytes must fail on the bound check, before any allocation
// sized by the claim.
func TestSeedEntryRejectsHugeCounts(t *testing.T) {
	var b []byte
	b = framing.AppendString(b, "k")
	b = framing.AppendVarint(b, 1<<40) // rows
	b = framing.AppendVarint(b, 1)     // cols
	if _, err := decodeSeedEntry(b); err == nil {
		t.Fatal("absurd row count accepted")
	}
	b = nil
	b = framing.AppendString(b, "k")
	b = framing.AppendVarint(b, 1) // rows
	b = framing.AppendVarint(b, 1) // cols
	b = framing.AppendUvarint(b, 1<<40)
	if _, err := decodeSeedEntry(b); err == nil {
		t.Fatal("absurd row length accepted")
	}
}

// TestSeedShipsNothingInSharedProcess: loopback workers share the
// coordinator's process, and buildSeed pre-installs the warm counter
// into that process's seed cache — so every connection's SeedRef must
// hit and the run must ship zero seed copies, exactly like the
// in-process facade's fork.
func TestSeedShipsNothingInSharedProcess(t *testing.T) {
	seedMu.Lock()
	seedCache = map[uint64]*seedEntry{}
	seedLRU = nil
	seedMu.Unlock()
	fx := newDistFixture(t, 3, 0)
	coord := &Coordinator{Transport: Loopback{}, Opts: Options{Train: fx.train, Workers: 3}}
	res, m, err := coord.Run(fx.pair, fx.plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAlignment(t, res, fx.ref, fx.plan)
	if m.SeedShips != 0 {
		t.Errorf("seed shipped %d times across 3 loopback connections, want 0 (pre-installed)", m.SeedShips)
	}
	if m.SeedBytes <= 0 {
		t.Errorf("no seed negotiation bytes audited: %+v", m)
	}
}

// TestSeedShipInstallAck drives the miss path by hand: a fresh worker
// process (simulated by evicting the cache after buildSeed's
// pre-install) must receive the shipped seed and confirm the completed
// install with a CacheAck before negotiateSeed returns; a second
// connection into the same process must then hit without a ship.
func TestSeedShipInstallAck(t *testing.T) {
	pair := fixturePair(t)
	fp, body, err := buildSeed(pair, nil, TrainConfig{FeatureSet: FeaturesFull}, 0)
	if err != nil {
		t.Fatal(err)
	}
	seedMu.Lock()
	seedCache = map[uint64]*seedEntry{}
	seedLRU = nil
	seedMu.Unlock()
	dial := func() net.Conn {
		c, w := net.Pipe()
		go Serve(w)
		if err := WriteFrame(c, FrameHello, &Hello{Role: "coordinator"}); err != nil {
			t.Fatal(err)
		}
		if err := ReadExpect(c, FrameHello, &Hello{}); err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1 := dial()
	defer c1.Close()
	n, shipped, err := negotiateSeed(c1, fp, body)
	if err != nil {
		t.Fatal(err)
	}
	if !shipped || n < int64(len(body)) {
		t.Fatalf("fresh cache: shipped=%v n=%d, want a full ship of >= %d bytes", shipped, n, len(body))
	}
	c2 := dial()
	defer c2.Close()
	n2, shipped2, err := negotiateSeed(c2, fp, body)
	if err != nil {
		t.Fatal(err)
	}
	if shipped2 || n2 >= int64(len(body)) {
		t.Fatalf("warm cache: shipped=%v n=%d, want a ref-hit", shipped2, n2)
	}
}

// TestSeedEntryRoundTrip: CSR content survives the delta/uvarint
// packing exactly, for both the integer fast path and the float
// fallback.
func TestSeedEntryRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		e    metadiag.SeedEntry
	}{
		{"ints", metadiag.SeedEntry{Key: "u->p", Rows: 3, Cols: 4,
			RowPtr: []int{0, 2, 2, 3}, ColIdx: []int{0, 3, 1}, Val: []float64{1, 5, 1 << 40}}},
		{"floats", metadiag.SeedEntry{Key: "u->p", Rows: 1, Cols: 2,
			RowPtr: []int{0, 2}, ColIdx: []int{0, 1}, Val: []float64{0.5, -3}}},
		{"empty", metadiag.SeedEntry{Key: "", Rows: 2, Cols: 2,
			RowPtr: []int{0, 0, 0}, ColIdx: nil, Val: nil}},
	} {
		got, err := decodeSeedEntry(appendSeedEntry(nil, &tc.e))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got.Key != tc.e.Key || got.Rows != tc.e.Rows || got.Cols != tc.e.Cols {
			t.Errorf("%s: header mangled: %+v", tc.name, got)
		}
		for i, v := range tc.e.Val {
			if got.Val[i] != v {
				t.Errorf("%s: val[%d] = %v, want %v", tc.name, i, got.Val[i], v)
			}
		}
		for i, c := range tc.e.ColIdx {
			if got.ColIdx[i] != c {
				t.Errorf("%s: colIdx[%d] = %d, want %d", tc.name, i, got.ColIdx[i], c)
			}
		}
		for i, p := range tc.e.RowPtr {
			if got.RowPtr[i] != p {
				t.Errorf("%s: rowPtr[%d] = %d, want %d", tc.name, i, got.RowPtr[i], p)
			}
		}
	}
}
