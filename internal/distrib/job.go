package distrib

import (
	"io"

	"fmt"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/partition"
	"github.com/activeiter/activeiter/internal/schema"
)

// Feature set and strategy names carried on the wire. They mirror the
// facade's FeatureSet/StrategyKind vocabulary; the worker resolves them
// locally because neither schema.Named nor active.Strategy is
// serializable.
const (
	FeaturesFull     = "full"
	FeaturesPaths    = "paths"
	FeaturesExtended = "extended"

	StrategyConflict    = "conflict"
	StrategyRandom      = "random"
	StrategyUncertainty = "uncertainty"
)

// ResolveFeatures maps a wire feature-set name to the diagram library.
// The empty name means FeaturesFull.
func ResolveFeatures(name string) ([]schema.Named, error) {
	switch name {
	case "", FeaturesFull:
		return schema.StandardLibrary().All(), nil
	case FeaturesPaths:
		return schema.StandardLibrary().PathsOnly(), nil
	case FeaturesExtended:
		return schema.ExtendedLibrary().All(), nil
	default:
		return nil, fmt.Errorf("distrib: unknown feature set %q", name)
	}
}

// ResolveStrategy maps a wire strategy name to a query strategy. The
// empty name means conflict (the paper's default).
func ResolveStrategy(name string) (active.Strategy, error) {
	switch name {
	case "", StrategyConflict:
		return active.Conflict{}, nil
	case StrategyRandom:
		return active.Random{}, nil
	case StrategyUncertainty:
		return active.Uncertainty{}, nil
	default:
		return nil, fmt.Errorf("distrib: unknown strategy %q", name)
	}
}

// TrainConfig is the wire-safe training configuration shared by every
// job of one run — partition.TrainOptions flattened into serializable
// scalars.
type TrainConfig struct {
	// FeatureSet selects the diagram library ("full", "paths",
	// "extended"; empty = full).
	FeatureSet string
	// Strategy selects the query strategy ("conflict", "random",
	// "uncertainty"; empty = conflict).
	Strategy string
	// C is the ridge fit weight (0 = default 1).
	C float64
	// Threshold is the selection cutoff; nil = the paper's ½.
	Threshold *float64
	// BatchSize is the per-round query batch (0 = default 5).
	BatchSize int
	// Exact swaps greedy selection for the Hungarian optimum.
	Exact bool
	// Seed is the base seed; each shard offsets it by its index exactly
	// like the in-process pipeline.
	Seed int64
}

// NewJob packages an extracted shard with the run's training
// configuration as a wire job.
func NewJob(shard *partition.Shard, cfg TrainConfig) *Job {
	j := &Job{
		Shard:      shard.Part.Index,
		G1:         EncodeNetwork(shard.Pair.G1),
		G2:         EncodeNetwork(shard.Pair.G2),
		AnchorType: string(shard.Pair.AnchorType),
		TrainPos:   shard.Part.TrainPos,
		Candidates: shard.Part.Candidates,
		InvUsers1:  shard.InvUsers1,
		InvUsers2:  shard.InvUsers2,
		FeatureSet: cfg.FeatureSet,
		Strategy:   cfg.Strategy,
		C:          cfg.C,
		BatchSize:  cfg.BatchSize,
		Exact:      cfg.Exact,
		Budget:     shard.Part.Budget,
		Seed:       cfg.Seed,
	}
	if cfg.Threshold != nil {
		j.Threshold = *cfg.Threshold
		j.HasThreshold = true
	}
	return j
}

// JobSizes measures, per shard of the plan, the serialized job frame in
// bytes — with neighborhood extraction when extract is true, shipping
// the full pair otherwise — without dispatching anything. A run's real
// shipped bytes come from Metrics.JobBytes; this exists to price the
// counterfactual (what would the OTHER mode have cost), so callers only
// pay extraction+serialization for the variant they ask about.
func JobSizes(pair *hetnet.AlignedPair, plan *partition.Plan, cfg TrainConfig, extract bool) ([]int64, error) {
	var sizes []int64
	for i := range plan.Parts {
		part := &plan.Parts[i]
		var sh *partition.Shard
		if extract {
			var err error
			if sh, err = partition.ExtractShard(pair, part); err != nil {
				sh = partition.FullShard(pair, part)
			}
		} else {
			sh = partition.FullShard(pair, part)
		}
		cw := &countingWriter{w: io.Discard}
		if err := WriteFrame(cw, FrameJob, NewJob(sh, cfg)); err != nil {
			return nil, err
		}
		sizes = append(sizes, cw.n)
	}
	return sizes, nil
}

// DecodeShard rebuilds the job's sub-pair and part on the worker side,
// validating networks, anchors and inverse maps.
func (j *Job) DecodeShard() (*hetnet.AlignedPair, *partition.Part, error) {
	g1, err := j.G1.Decode()
	if err != nil {
		return nil, nil, err
	}
	g2, err := j.G2.Decode()
	if err != nil {
		return nil, nil, err
	}
	pair := hetnet.NewAlignedPair(g1, g2)
	if j.AnchorType != "" {
		pair.AnchorType = hetnet.NodeType(j.AnchorType)
	}
	for _, a := range j.TrainPos {
		if err := pair.AddAnchor(a.I, a.J); err != nil {
			return nil, nil, fmt.Errorf("distrib: job shard %d: %w", j.Shard, err)
		}
	}
	if err := pair.Validate(); err != nil {
		return nil, nil, fmt.Errorf("distrib: job shard %d: %w", j.Shard, err)
	}
	n1 := g1.NodeCount(pair.AnchorType)
	n2 := g2.NodeCount(pair.AnchorType)
	if len(j.InvUsers1) != n1 || len(j.InvUsers2) != n2 {
		return nil, nil, fmt.Errorf("distrib: job shard %d: inverse maps (%d,%d) do not match user counts (%d,%d)",
			j.Shard, len(j.InvUsers1), len(j.InvUsers2), n1, n2)
	}
	for _, c := range j.Candidates {
		if c.I < 0 || c.I >= n1 || c.J < 0 || c.J >= n2 {
			return nil, nil, fmt.Errorf("distrib: job shard %d: candidate (%d,%d) out of range", j.Shard, c.I, c.J)
		}
	}
	part := &partition.Part{
		Index:      j.Shard,
		TrainPos:   j.TrainPos,
		Candidates: j.Candidates,
		Budget:     j.Budget,
	}
	return pair, part, nil
}
