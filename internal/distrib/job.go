package distrib

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"math"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/partition"
	"github.com/activeiter/activeiter/internal/schema"
)

// Feature set and strategy names carried on the wire. They mirror the
// facade's FeatureSet/StrategyKind vocabulary; the worker resolves them
// locally because neither schema.Named nor active.Strategy is
// serializable.
const (
	FeaturesFull     = "full"
	FeaturesPaths    = "paths"
	FeaturesExtended = "extended"

	StrategyConflict    = "conflict"
	StrategyRandom      = "random"
	StrategyUncertainty = "uncertainty"
)

// ResolveFeatures maps a wire feature-set name to the diagram library.
// The empty name means FeaturesFull.
func ResolveFeatures(name string) ([]schema.Named, error) {
	switch name {
	case "", FeaturesFull:
		return schema.StandardLibrary().All(), nil
	case FeaturesPaths:
		return schema.StandardLibrary().PathsOnly(), nil
	case FeaturesExtended:
		return schema.ExtendedLibrary().All(), nil
	default:
		return nil, fmt.Errorf("distrib: unknown feature set %q", name)
	}
}

// ResolveStrategy maps a wire strategy name to a query strategy. The
// empty name means conflict (the paper's default).
func ResolveStrategy(name string) (active.Strategy, error) {
	switch name {
	case "", StrategyConflict:
		return active.Conflict{}, nil
	case StrategyRandom:
		return active.Random{}, nil
	case StrategyUncertainty:
		return active.Uncertainty{}, nil
	default:
		return nil, fmt.Errorf("distrib: unknown strategy %q", name)
	}
}

// TrainConfig is the wire-safe training configuration shared by every
// job of one run — partition.TrainOptions flattened into serializable
// scalars.
type TrainConfig struct {
	// FeatureSet selects the diagram library ("full", "paths",
	// "extended"; empty = full).
	FeatureSet string
	// Strategy selects the query strategy ("conflict", "random",
	// "uncertainty"; empty = conflict).
	Strategy string
	// C is the ridge fit weight (0 = default 1).
	C float64
	// Threshold is the selection cutoff; nil = the paper's ½.
	Threshold *float64
	// BatchSize is the per-round query batch (0 = default 5).
	BatchSize int
	// Exact swaps greedy selection for the Hungarian optimum.
	Exact bool
	// Seed is the base seed; each shard offsets it by its index exactly
	// like the in-process pipeline.
	Seed int64
}

// NewJob packages an extracted shard with the run's training
// configuration as a wire job. The shard's prelabels (if any) ship in
// sub-pair indices; Fingerprint is left zero — session coordinators
// stamp it via ComputeFingerprint to opt the worker into caching.
func NewJob(shard *partition.Shard, cfg TrainConfig) *Job {
	j := &Job{
		Shard:      shard.Part.Index,
		G1:         EncodeNetwork(shard.Pair.G1),
		G2:         EncodeNetwork(shard.Pair.G2),
		AnchorType: string(shard.Pair.AnchorType),
		TrainPos:   shard.Part.TrainPos,
		Candidates: shard.Part.Candidates,
		Prelabeled: WireLabels(shard.Part.Prelabeled),
		InvUsers1:  shard.InvUsers1,
		InvUsers2:  shard.InvUsers2,
		FeatureSet: cfg.FeatureSet,
		Strategy:   cfg.Strategy,
		C:          cfg.C,
		BatchSize:  cfg.BatchSize,
		Exact:      cfg.Exact,
		Budget:     shard.Part.Budget,
		Seed:       cfg.Seed,
	}
	if cfg.Threshold != nil {
		j.Threshold = *cfg.Threshold
		j.HasThreshold = true
	}
	return j
}

// WireLabels converts partition labels (already in the job's index
// space) to their wire form.
func WireLabels(labels []partition.LabeledLink) []WireLabel {
	if len(labels) == 0 {
		return nil
	}
	out := make([]WireLabel, len(labels))
	for k, l := range labels {
		out[k] = WireLabel{I: int32(l.Link.I), J: int32(l.Link.J), Label: l.Label}
	}
	return out
}

// partLabels is the inverse of WireLabels.
func partLabels(labels []WireLabel) []partition.LabeledLink {
	if len(labels) == 0 {
		return nil
	}
	out := make([]partition.LabeledLink, len(labels))
	for k, l := range labels {
		out[k] = partition.LabeledLink{Link: hetnet.Anchor{I: int(l.I), J: int(l.J)}, Label: l.Label}
	}
	return out
}

// fingerprintHasher feeds length-delimited primitives into FNV-1a. Gob
// is deliberately NOT used here: gob streams embed type IDs assigned
// from process-global encode history, so equal values can encode to
// different bytes in different processes — fine for the self-describing
// frames, fatal for a fingerprint two runs must agree on.
type fingerprintHasher struct{ h hash.Hash64 }

func (f *fingerprintHasher) u64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	f.h.Write(b[:])
}
func (f *fingerprintHasher) str(s string) {
	f.u64(uint64(len(s)))
	f.h.Write([]byte(s))
}
func (f *fingerprintHasher) anchors(as []hetnet.Anchor) {
	f.u64(uint64(len(as)))
	for _, a := range as {
		f.u64(uint64(uint32(a.I)))
		f.u64(uint64(uint32(a.J)))
	}
}
func (f *fingerprintHasher) ints(vs []int32) {
	f.u64(uint64(len(vs)))
	for _, v := range vs {
		f.u64(uint64(uint32(v)))
	}
}
func (f *fingerprintHasher) network(w *WireNetwork) {
	f.str(w.Name)
	f.u64(uint64(len(w.NodeTypes)))
	for k, t := range w.NodeTypes {
		f.str(t)
		f.u64(uint64(len(w.NodeIDs[k])))
		for _, id := range w.NodeIDs[k] {
			f.str(id)
		}
	}
	f.u64(uint64(len(w.LinkTypes)))
	for k, t := range w.LinkTypes {
		f.str(t)
		f.str(w.LinkSrc[k])
		f.str(w.LinkDst[k])
		f.ints(w.LinkFrom[k])
		f.ints(w.LinkTo[k])
	}
}

// ComputeFingerprint hashes the job's shard-stable content: the sub-pair
// networks (or the seed fingerprint standing in for them), the pool,
// the inverse maps, and the training configuration. Budget, Seed and
// Prelabeled — the per-round mutables — stay out, so
// every round of a stable plan hashes identically, which is the whole
// point. The result keys the worker-side shard cache; it is a cache key,
// not an authenticator. Never returns 0 (the "no caching" sentinel).
func (j *Job) ComputeFingerprint() uint64 {
	f := &fingerprintHasher{h: fnv.New64a()}
	f.u64(uint64(uint32(j.Shard)))
	f.network(&j.G1)
	f.network(&j.G2)
	f.str(j.AnchorType)
	f.anchors(j.TrainPos)
	f.anchors(j.Candidates)
	f.ints(j.InvUsers1)
	f.ints(j.InvUsers2)
	f.u64(j.SeedFP)
	f.str(j.FeatureSet)
	f.str(j.Strategy)
	f.u64(math.Float64bits(j.C))
	f.u64(math.Float64bits(j.Threshold))
	if j.HasThreshold {
		f.u64(1)
	} else {
		f.u64(0)
	}
	f.u64(uint64(uint32(j.BatchSize)))
	if j.Exact {
		f.u64(1)
	} else {
		f.u64(0)
	}
	if s := f.h.Sum64(); s != 0 {
		return s
	}
	return 1
}

// JobSizes measures, per shard of the plan, the serialized job frame in
// bytes — with neighborhood extraction when extract is true, shipping
// the full pair otherwise — without dispatching anything. A run's real
// shipped bytes come from Metrics.JobBytes; this exists to price the
// counterfactual (what would the OTHER mode have cost), so callers only
// pay extraction+serialization for the variant they ask about.
func JobSizes(pair *hetnet.AlignedPair, plan *partition.Plan, cfg TrainConfig, extract bool) ([]int64, error) {
	var sizes []int64
	for i := range plan.Parts {
		part := &plan.Parts[i]
		var sh *partition.Shard
		if extract {
			var err error
			if sh, err = partition.ExtractShard(pair, part); err != nil {
				sh = partition.FullShard(pair, part)
			}
		} else {
			sh = partition.FullShard(pair, part)
		}
		cw := &countingWriter{w: io.Discard}
		if err := WriteFrame(cw, FrameJob, NewJob(sh, cfg)); err != nil {
			return nil, err
		}
		sizes = append(sizes, cw.n)
	}
	return sizes, nil
}

// DecodeShard rebuilds the job's sub-pair and part on the worker side,
// validating networks, anchors and inverse maps.
func (j *Job) DecodeShard() (*hetnet.AlignedPair, *partition.Part, error) {
	g1, err := j.G1.Decode()
	if err != nil {
		return nil, nil, err
	}
	g2, err := j.G2.Decode()
	if err != nil {
		return nil, nil, err
	}
	pair := hetnet.NewAlignedPair(g1, g2)
	if j.AnchorType != "" {
		pair.AnchorType = hetnet.NodeType(j.AnchorType)
	}
	for _, a := range j.TrainPos {
		if err := pair.AddAnchor(a.I, a.J); err != nil {
			return nil, nil, fmt.Errorf("distrib: job shard %d: %w", j.Shard, err)
		}
	}
	if err := pair.Validate(); err != nil {
		return nil, nil, fmt.Errorf("distrib: job shard %d: %w", j.Shard, err)
	}
	n1 := g1.NodeCount(pair.AnchorType)
	n2 := g2.NodeCount(pair.AnchorType)
	if len(j.InvUsers1) != n1 || len(j.InvUsers2) != n2 {
		return nil, nil, fmt.Errorf("distrib: job shard %d: inverse maps (%d,%d) do not match user counts (%d,%d)",
			j.Shard, len(j.InvUsers1), len(j.InvUsers2), n1, n2)
	}
	for _, c := range j.Candidates {
		if c.I < 0 || c.I >= n1 || c.J < 0 || c.J >= n2 {
			return nil, nil, fmt.Errorf("distrib: job shard %d: candidate (%d,%d) out of range", j.Shard, c.I, c.J)
		}
	}
	for _, l := range j.Prelabeled {
		if l.I < 0 || int(l.I) >= n1 || l.J < 0 || int(l.J) >= n2 {
			return nil, nil, fmt.Errorf("distrib: job shard %d: prelabel (%d,%d) out of range", j.Shard, l.I, l.J)
		}
	}
	part := &partition.Part{
		Index:      j.Shard,
		TrainPos:   j.TrainPos,
		Candidates: j.Candidates,
		Budget:     j.Budget,
		Prelabeled: partLabels(j.Prelabeled),
	}
	return pair, part, nil
}
