// Package distrib fans shard alignment out across processes: a
// coordinator serializes each partition.Shard as a wire-format job,
// dispatches it to workers over a pluggable transport (in-process
// loopback, stdio pipes to subprocesses, TCP), answers the workers'
// oracle queries, and reconciles the returned vote streams incrementally
// through the partition.Merger / multinet score-greedy union-find. The
// per-shard pipeline a worker runs is partition.TrainPart — the same
// code the in-process path runs on counter forks — so a distributed run
// is property-tested identical to PartitionedAligner for the same seed
// and shard plan.
//
// # Wire format
//
// The protocol is a stream of length-prefixed, versioned, checksummed
// frames in both directions:
//
//	┌─────────────┬─────────┬──────────┬──────────────────┬─────────┐
//	│ length u32  │ magic   │ ver  typ │ payload          │ crc32c  │
//	│ big endian  │ 2 bytes │ 1B   1B  │ length − 8 bytes │ 4 bytes │
//	└─────────────┴─────────┴──────────┴──────────────────┴─────────┘
//
// Payloads come in two flavors. The hot frames — Job, JobRef, Votes,
// Done, and the warm-counter Seed — are hand-rolled flat columnar
// layouts (internal/framing put/get primitives: varint scalars, packed
// float64 runs, struct-of-arrays columns; see codec.go and docs/WIRE.md
// for the field tables). The cold control frames — Hello, Progress,
// Query, Answer, CacheAck, Error, Cancel, SeedRef — stay self-contained
// gob documents (a fresh encoder per frame), where gob's self-describing
// overhead is noise. Either way a frame decodes independently of every
// other frame, so frames survive reordering across connections, and
// corrupt or foreign streams fail fast on the magic/version check
// instead of deep inside a decoder. A version bump is a
// wire-compatibility statement: readers reject frames of any other
// version (ErrVersionMismatch) rather than guess at field semantics.
// The CRC-32C trailer covers the type byte and payload: a byte flipped
// in transit is a detected ErrChecksum — the coordinator burns the
// connection and retries the shard — never silently different votes.
//
// The conversation is strictly request-driven: the coordinator sends
// Hello then one Job (or JobRef, see below) per shard; the worker
// answers with any number of Progress, Query (oracle round-trips,
// answered by Answer frames) and Votes frames, terminated by exactly one
// Done or Error frame.
//
// # Sticky sessions
//
// A multi-round session (active-learning retraining over a stable shard
// plan) avoids re-shipping unchanged shards: every Job carries a
// Fingerprint of its shard-stable content, a long-lived worker caches
// the prepared shard (decoded sub-pair, warmed counter, feature matrix)
// under that fingerprint, and later rounds send a JobRef — fingerprint
// plus the round's label delta — instead of the multi-megabyte Job. The
// worker acknowledges with CacheAck: on a hit it re-runs training on the
// warm state immediately; on a miss (restarted worker, evicted entry,
// colliding fingerprint) the coordinator falls back to a full Job. See
// docs/WIRE.md for the complete frame catalog and session lifecycle.
package distrib

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"github.com/activeiter/activeiter/internal/framing"
	"github.com/activeiter/activeiter/internal/hetnet"
)

// Version is the wire protocol version. Bump it on any change to frame
// payload shapes; readers reject every other version.
//
// Version history:
//
//	1 — PR 3: Hello/Job/Votes/Progress/Query/Answer/Done/Error.
//	2 — PR 4: sticky sessions. Job gains Fingerprint and Prelabeled;
//	    JobRef and CacheAck frames added.
//	3 — PR 5: Done gains W, the shard's trained weight vector, so the
//	    coordinator can persist per-shard models in alignment
//	    snapshots.
//	4 — PR 6: fault tolerance. Every frame gains a CRC-32C trailer
//	    (corruption in transit becomes a detected, retryable transport
//	    failure instead of silently different votes); Cancel frame
//	    added so a coordinator can abandon a hedged or abandoned shard
//	    mid-stream.
//	5 — PR 7: columnar hot frames + warm-counter seed shipping. Job,
//	    JobRef, Votes and Done switch from gob to hand-rolled columnar
//	    bodies; Job gains SeedFP; SeedRef/Seed frames ship the
//	    coordinator's anchor-free count cache once per connection, so
//	    seeded jobs omit their networks and inverse maps entirely.
//	6 — PR 8: cross-process tracing. Job, JobRef and Seed grow a
//	    TraceID/SpanID columnar tail (zero = tracing off) so worker-side
//	    spans parent under the coordinator's per-attempt spans; Done
//	    grows a span column carrying the worker's prepare/train/votes
//	    spans back to the coordinator's trace file.
const Version = 6

// maxFrameSize bounds a frame's declared length so a corrupt or hostile
// length prefix cannot OOM the reader. Jobs carry whole sub-networks;
// 1 GiB is far above any realistic shard and far below pathology.
const maxFrameSize = 1 << 30

// codec is the distrib instance of the shared framing discipline: the
// 'A','I' magic rejects non-distrib streams, the version byte rides on
// every frame, and the frame cap guards the reader's allocations. The
// header layout (and its hostile-input handling) lives in
// internal/framing, shared with the snapshot artifact format.
var codec = framing.Codec{Magic: [2]byte{'A', 'I'}, Version: Version, MaxFrame: maxFrameSize, Checksum: true}

// FrameType tags a frame payload.
type FrameType uint8

const (
	// FrameHello opens a connection in each direction.
	FrameHello FrameType = iota + 1
	// FrameJob carries one shard job, coordinator → worker.
	FrameJob
	// FrameVotes carries a batch of pool-link votes, worker → coordinator.
	FrameVotes
	// FrameProgress reports a pipeline stage change, worker → coordinator.
	FrameProgress
	// FrameQuery asks the coordinator's oracle for a label.
	FrameQuery
	// FrameAnswer returns an oracle label, coordinator → worker.
	FrameAnswer
	// FrameDone completes a job with its audit report.
	FrameDone
	// FrameError aborts a job with a worker-side failure.
	FrameError
	// FrameJobRef re-runs a worker-cached shard with a label delta,
	// coordinator → worker (sessions only).
	FrameJobRef
	// FrameCacheAck answers a JobRef with the cache verdict, worker →
	// coordinator.
	FrameCacheAck
	// FrameCancel abandons an in-flight shard, coordinator → worker: the
	// losing side of a hedged dispatch, or a shard whose deadline fired.
	FrameCancel
	// FrameSeedRef offers the run's warm-counter seed to a freshly
	// dialed worker, coordinator → worker; answered by a CacheAck with
	// Shard −1.
	FrameSeedRef
	// FrameSeed ships the warm-counter seed body (networks plus the
	// anchor-free count cache), coordinator → worker, after a missed
	// SeedRef.
	FrameSeed
)

// ErrVersionMismatch is returned (wrapped, with the versions) when a
// frame of a different protocol version arrives. It is the shared
// framing sentinel, re-exported so callers can errors.Is against a
// distrib-local name.
var ErrVersionMismatch = framing.ErrVersionMismatch

// ErrChecksum is returned (wrapped) when a frame's CRC-32C trailer does
// not match its body — the stream was corrupted in transit. The
// connection cannot be trusted past the corrupt frame; the coordinator
// burns it and retries the shard on a fresh dial.
var ErrChecksum = framing.ErrChecksum

// Hello is the handshake payload. Role is informational ("coordinator",
// "worker") — the version check rides in the frame header.
type Hello struct {
	Role string
}

// WireNetwork is the deterministic interchange form of a
// hetnet.Network: node tables as ID lists in registration order, links
// as declared endpoint types plus parallel index arrays. Unlike the
// map-keyed JSON/gob interchange of hetnet, every field is a slice in a
// canonical order, so encoding the same network twice yields identical
// bytes — which is what makes golden-file wire tests possible.
type WireNetwork struct {
	Name      string
	NodeTypes []string
	NodeIDs   [][]string // parallel to NodeTypes
	LinkTypes []string
	LinkSrc   []string // parallel to LinkTypes
	LinkDst   []string
	LinkFrom  [][]int32
	LinkTo    [][]int32
}

// EncodeNetwork converts a network to wire form.
func EncodeNetwork(g *hetnet.Network) WireNetwork {
	w := WireNetwork{Name: g.Name()}
	for _, t := range g.NodeTypes() {
		ids := make([]string, g.NodeCount(t))
		for i := range ids {
			ids[i] = g.NodeID(t, i)
		}
		w.NodeTypes = append(w.NodeTypes, string(t))
		w.NodeIDs = append(w.NodeIDs, ids)
	}
	for _, lt := range g.LinkTypes() {
		src, dst, _ := g.LinkEndpoints(lt)
		from := make([]int32, 0, g.LinkCount(lt))
		to := make([]int32, 0, g.LinkCount(lt))
		g.Links(lt, func(f, t int) {
			from = append(from, int32(f))
			to = append(to, int32(t))
		})
		w.LinkTypes = append(w.LinkTypes, string(lt))
		w.LinkSrc = append(w.LinkSrc, string(src))
		w.LinkDst = append(w.LinkDst, string(dst))
		w.LinkFrom = append(w.LinkFrom, from)
		w.LinkTo = append(w.LinkTo, to)
	}
	return w
}

// Decode rebuilds the network, validating shape as it goes.
func (w *WireNetwork) Decode() (*hetnet.Network, error) {
	if len(w.NodeTypes) != len(w.NodeIDs) {
		return nil, fmt.Errorf("distrib: network %q: %d node types, %d ID lists", w.Name, len(w.NodeTypes), len(w.NodeIDs))
	}
	if len(w.LinkTypes) != len(w.LinkSrc) || len(w.LinkTypes) != len(w.LinkDst) ||
		len(w.LinkTypes) != len(w.LinkFrom) || len(w.LinkTypes) != len(w.LinkTo) {
		return nil, fmt.Errorf("distrib: network %q: ragged link tables", w.Name)
	}
	g := hetnet.NewNetwork(w.Name)
	for k, t := range w.NodeTypes {
		nt := hetnet.NodeType(t)
		for _, id := range w.NodeIDs[k] {
			g.AddNode(nt, id)
		}
		if g.NodeCount(nt) != len(w.NodeIDs[k]) {
			return nil, fmt.Errorf("distrib: network %q: duplicate node IDs in type %q", w.Name, t)
		}
	}
	for k, lt := range w.LinkTypes {
		if err := g.DeclareLink(hetnet.LinkType(lt), hetnet.NodeType(w.LinkSrc[k]), hetnet.NodeType(w.LinkDst[k])); err != nil {
			return nil, fmt.Errorf("distrib: network %q: %w", w.Name, err)
		}
		if len(w.LinkFrom[k]) != len(w.LinkTo[k]) {
			return nil, fmt.Errorf("distrib: network %q: link type %q has mismatched from/to lengths", w.Name, lt)
		}
		for e := range w.LinkFrom[k] {
			if err := g.AddLink(hetnet.LinkType(lt), int(w.LinkFrom[k][e]), int(w.LinkTo[k][e])); err != nil {
				return nil, fmt.Errorf("distrib: network %q: %w", w.Name, err)
			}
		}
	}
	return g, nil
}

// Job is one shard job: the extracted sub-pair, the shard's pool in
// sub-pair index space, the training configuration, and the inverse
// user maps the worker uses to vote (and query) in original indices.
type Job struct {
	// Shard is the Part.Index — it offsets the training seed and tags
	// every frame the worker sends back.
	Shard int
	// G1, G2 and AnchorType describe the (extracted) sub-pair.
	G1, G2     WireNetwork
	AnchorType string
	// SeedFP, when non-zero, names the warm-counter seed (shipped per
	// connection via SeedRef/Seed) this job's indices are relative to:
	// the job omits G1/G2 and the inverse maps, every index is an
	// ORIGINAL pair index, and the worker forks the seeded counter
	// instead of decoding networks and cold-counting. Zero is a
	// self-contained v4-style job.
	SeedFP uint64
	// TrainPos and Candidates are the shard pool in sub-pair indices.
	TrainPos   []hetnet.Anchor
	Candidates []hetnet.Anchor
	// Prelabeled carries oracle labels from earlier session rounds, in
	// sub-pair indices; the worker trains them as fixed queried labels.
	// Empty outside sessions (and in every round-1 job).
	Prelabeled []WireLabel
	// Fingerprint identifies the shard-stable content (sub-pair, pool,
	// training configuration — everything except Prelabeled, Budget and
	// Seed). Non-zero invites the worker to cache the prepared shard so a
	// later JobRef with the same fingerprint re-runs warm; zero (a PR 3
	// single-shot coordinator) disables caching.
	Fingerprint uint64
	// InvUsers1/InvUsers2 map sub-pair user indices back to original
	// pair indices.
	InvUsers1, InvUsers2 []int32
	// Training configuration, mirroring partition.TrainOptions flattened
	// into wire-safe scalars.
	FeatureSet   string // "full", "paths", "extended"
	Strategy     string // "conflict", "random", "uncertainty"
	C            float64
	Threshold    float64
	HasThreshold bool
	Budget       int // this shard's slice
	BatchSize    int
	Exact        bool
	Seed         int64 // base seed; the worker applies the per-shard offset
	// TraceID/SpanID are the coordinator's trace context for this
	// dispatch attempt: a non-zero TraceID asks the worker to record
	// prepare/train/votes spans parented under SpanID and ship them back
	// on the Done frame. Zero (tracing off) costs two bytes on the wire
	// and nothing on the worker. Excluded from ComputeFingerprint like
	// every other per-attempt mutable.
	TraceID uint64
	SpanID  uint64
}

// WireLabel is one oracle-labeled link in the index space of the frame
// carrying it: sub-pair indices in Job.Prelabeled and JobRef.AddLabels
// (the coordinator remaps through the shard's forward maps before
// shipping), original indices never.
type WireLabel struct {
	I, J  int32
	Label float64
}

// JobRef asks a worker to re-run a shard it already holds: the
// fingerprint names the cached prepared state, AddLabels is the label
// delta since the last run of that fingerprint on this connection, and
// Budget/Seed are this round's training knobs. Everything else — the
// sub-pair, the pool, the training configuration — is resolved from the
// worker's cache, which is what makes a delta round cost bytes
// proportional to the new labels instead of the shard.
type JobRef struct {
	Shard       int
	Fingerprint uint64
	// AddLabels are the prelabels the cached shard has not seen yet, in
	// sub-pair indices, canonical (I, J) order.
	AddLabels []WireLabel
	// Budget is this round's query budget slice for the shard.
	Budget int
	// Seed is this round's base seed (the worker still applies the
	// per-shard offset, exactly as for a full Job).
	Seed int64
	// TraceID/SpanID carry the round's trace context, exactly as on Job.
	TraceID uint64
	SpanID  uint64
}

// CacheAck answers a JobRef before any pipeline output: Hit reports
// whether the worker holds the fingerprint (with a matching shard
// index). On a hit the job's frame stream follows immediately; on a miss
// the worker waits for a full Job re-ship of the same shard.
type CacheAck struct {
	Shard       int
	Fingerprint uint64
	Hit         bool
}

// Cancel tells the worker the coordinator no longer wants the named
// shard's stream: another (hedged) attempt already won, or the shard's
// deadline fired. Delivery is advisory — a worker deep in training
// without oracle round-trips only notices at its next read — so the
// coordinator follows it by closing the connection; the frame exists so
// a worker blocked waiting for an Answer aborts the job promptly (and a
// long-lived TCP worker returns to its serve loop) instead of dying on
// a closed stream mid-write.
type Cancel struct {
	Shard int
}

// Vote is one pool link's verdict in ORIGINAL pair indices — the wire
// form of partition.Vote.
type Vote struct {
	I, J    int32
	Label   float64
	Score   float64
	Queried bool
	Fixed   bool
}

// Votes is a batch of votes for one shard.
type Votes struct {
	Shard int
	Votes []Vote
}

// Progress reports a worker pipeline stage.
type Progress struct {
	Shard   int
	Stage   string // "counting", "features", "training", "voting"
	Queries int
}

// Query asks the coordinator's oracle to label a link (original
// indices).
type Query struct {
	Shard int
	Seq   uint64
	I, J  int32
}

// Answer returns an oracle label for the query with the same Seq.
type Answer struct {
	Seq   uint64
	Label float64
}

// Done completes a job; the fields mirror partition.PartReport, plus
// the shard's trained model.
type Done struct {
	Shard      int
	TrainPos   int
	Candidates int
	Budget     int
	Queries    int
	ElapsedNS  int64
	// W is the shard's trained feature weight vector (layout: the job's
	// feature set followed by the bias term). The coordinator records it
	// in the merged result's ShardWeights so a snapshot of a distributed
	// run can serve inductive rescoring, exactly like an in-process one.
	W []float64
	// Spans are the worker-side spans of this job's pipeline (prepare,
	// train, votes), recorded only when the request carried a non-zero
	// TraceID. Their Parent IDs are coordinator span IDs propagated on
	// the request frame, which is how a worker span in another process
	// nests under the coordinator's attempt span in one trace file.
	Spans []WireSpan
}

// WireSpan is one finished worker-side span riding a Done frame back to
// the coordinator. Times are unix nanoseconds — coordinator and worker
// share the host clock in every supported transport.
type WireSpan struct {
	ID, Parent     uint64
	Name           string
	StartNS, EndNS int64
}

// JobError aborts a job with a worker-side failure description.
type JobError struct {
	Shard int
	Msg   string
}

// frameAppender is implemented by hot-frame payloads that hand-roll
// their bodies as flat columnar layouts (codec.go); everything else
// falls back to gob. WriteFrame probes it so call sites stay payload-
// agnostic.
type frameAppender interface{ appendBody(b []byte) []byte }

// frameDecoder is the decode half of frameAppender, probed by
// DecodeBody.
type frameDecoder interface{ decodeBody(body []byte) error }

// WriteFrame encodes payload as one length-prefixed frame. The payload
// must be one of the frame payload structs above (pass hot-frame
// payloads by pointer so their columnar codec is picked up).
func WriteFrame(w io.Writer, typ FrameType, payload any) error {
	var body []byte
	if fa, ok := payload.(frameAppender); ok {
		body = fa.appendBody(nil)
	} else {
		// Cold frames are self-contained gob documents: a fresh encoder
		// per frame keeps them independently decodable.
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
			return fmt.Errorf("distrib: encode %v frame: %w", typ, err)
		}
		body = buf.Bytes()
	}
	if err := codec.WriteFrame(w, byte(typ), body); err != nil {
		return fmt.Errorf("distrib: %w", err)
	}
	return nil
}

// ReadFrame reads one frame header and returns its type plus the raw
// gob body for DecodeBody. io.EOF is returned untouched on a clean
// end-of-stream boundary. Hostile-input handling (length bounds,
// magic/version validation before any allocation, body draining on
// header errors) is the shared framing codec's.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	typ, body, err := codec.ReadFrame(r)
	if err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("distrib: %w", err)
	}
	return FrameType(typ), body, nil
}

// DecodeBody decodes a frame body returned by ReadFrame into the
// payload struct matching its type (columnar for the hot frames, gob
// otherwise). Decode into a zero value: the columnar decoders assign
// every field but do not clear stale state.
func DecodeBody(body []byte, into any) error {
	if fd, ok := into.(frameDecoder); ok {
		return fd.decodeBody(body)
	}
	return gob.NewDecoder(bytes.NewReader(body)).Decode(into)
}

// ReadExpect reads one frame and requires the given type, decoding into
// `into`. An Error frame is surfaced as its message; anything else is a
// protocol violation.
func ReadExpect(r io.Reader, want FrameType, into any) error {
	typ, body, err := ReadFrame(r)
	if err != nil {
		return err
	}
	if typ == FrameError && want != FrameError {
		var je JobError
		if derr := DecodeBody(body, &je); derr == nil {
			return fmt.Errorf("distrib: remote error (shard %d): %s", je.Shard, je.Msg)
		}
	}
	if typ != want {
		return fmt.Errorf("distrib: unexpected frame type %d, want %d", typ, want)
	}
	return DecodeBody(body, into)
}
