package distrib

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/partition"
)

// Options configures a coordinator run.
type Options struct {
	// Train is the training configuration shipped with every job.
	Train TrainConfig
	// Workers caps concurrent worker connections; default
	// min(shards, GOMAXPROCS).
	Workers int
	// Retries is how many times a failed shard is re-dispatched on a
	// fresh connection before the run aborts; default 2. Negative
	// disables retries.
	Retries int
	// NoExtract ships every shard with the full pair (identity maps)
	// instead of its extracted neighborhood — the bytes-on-wire baseline
	// and the fallback for schemas ExtractShard refuses.
	NoExtract bool
	// DeltaMaxLabels (sessions only) caps the label delta a JobRef may
	// carry: a shard whose accumulated unsent labels exceed it re-ships
	// as a full Job instead (an oversized delta plus a warm re-train can
	// cost more than a cold job). 0 means the default (4096); negative
	// disables delta shipping entirely — every round ships full jobs,
	// which is the session property-test baseline. Coordinator.Run
	// ignores it.
	DeltaMaxLabels int
	// OnProgress, when set, receives worker progress frames (from
	// concurrent goroutines; the callback must be thread-safe).
	OnProgress func(Progress)
}

// ShardMetrics records one shard's wire cost; attempts > 1 means the
// shard was retried.
type ShardMetrics struct {
	Shard     int
	JobBytes  int64 // job frame bytes, last successful attempt
	Attempts  int
	Extracted bool
	// CacheHit and DeltaLabels describe session delta shipping: the
	// shard re-ran from the worker's warm cache, carrying this many new
	// labels. On a hit JobBytes is the JobRef frame's size; on a missed
	// JobRef attempt it includes both the JobRef and the fallback Job.
	CacheHit    bool
	DeltaLabels int
}

// Metrics is a run's transport audit: what crossed the wire. For a
// Session, Run returns the round's metrics and Session.Metrics the
// running totals.
type Metrics struct {
	Shards      []ShardMetrics
	JobBytes    int64 // total full-job frame bytes, successful attempts only
	DeltaBytes  int64 // total JobRef frame bytes (hit or missed attempts), successful shards only
	ResultBytes int64 // total bytes read back from workers (incl. CacheAcks)
	// Queries counts oracle round-trips actually answered, INCLUDING
	// those of failed attempts whose votes were discarded — retried
	// shards re-spend oracle labels, and this is the audit of real
	// labeling cost. Equals Result.QueryCount only on retry-free runs.
	Queries int
	Retries int // shard re-dispatches after failures
	// CacheHits/CacheMisses count JobRef verdicts (sessions only): a
	// miss is a JobRef the worker could not serve warm — worker restart,
	// eviction, fingerprint-collision defense — answered by a full-Job
	// re-ship.
	CacheHits   int
	CacheMisses int
}

// add folds a per-shard or per-round tally into the receiver (used for
// the session's cumulative metrics).
func (m *Metrics) add(o *Metrics) {
	m.Shards = append(m.Shards, o.Shards...)
	m.JobBytes += o.JobBytes
	m.DeltaBytes += o.DeltaBytes
	m.ResultBytes += o.ResultBytes
	m.Queries += o.Queries
	m.Retries += o.Retries
	m.CacheHits += o.CacheHits
	m.CacheMisses += o.CacheMisses
}

// Coordinator dispatches shard jobs over a transport and reconciles the
// returned vote streams into one globally one-to-one result. A zero
// Coordinator is not usable; set Transport.
type Coordinator struct {
	Transport Transport
	Opts      Options
}

// countingWriter tallies bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// countingReader tallies bytes read through it.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// shardResult is one successful shard execution, ready to commit.
type shardResult struct {
	votes     []partition.Vote
	report    partition.PartReport
	weights   []float64 // the shard's trained model, from its Done frame
	jobBytes  int64     // full Job frame bytes written
	refBytes  int64     // JobRef frame bytes written (sessions; hit or missed attempt)
	readBytes int64
	extracted bool
}

// Run executes every shard of the plan on remote workers and merges
// their votes. The pair must be the ORIGINAL aligned pair the plan was
// built against; oracle may be nil when the plan's total budget is
// zero. Votes are committed to the merger only when a shard's Done
// frame arrives, so a shard that dies mid-stream retries from scratch
// without double-voting; within that rule the reconciliation is
// streaming — shards commit as they finish, in any order, and the
// merged result is order-independent.
func (c *Coordinator) Run(pair *hetnet.AlignedPair, plan *partition.Plan, oracle active.Oracle) (*partition.Result, *Metrics, error) {
	if c.Transport == nil {
		return nil, nil, fmt.Errorf("distrib: nil transport")
	}
	if pair == nil {
		return nil, nil, fmt.Errorf("distrib: nil pair")
	}
	if plan == nil || len(plan.Parts) == 0 {
		return nil, nil, fmt.Errorf("distrib: empty plan")
	}
	totalBudget := 0
	for i := range plan.Parts {
		totalBudget += plan.Parts[i].Budget
	}
	if totalBudget > 0 && oracle == nil {
		return nil, nil, fmt.Errorf("distrib: plan carries budget %d but no oracle", totalBudget)
	}
	start := time.Now()

	k := len(plan.Parts)
	workers := c.Opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}
	retries := c.Opts.Retries
	if retries == 0 {
		retries = 2
	} else if retries < 0 {
		retries = 0
	}

	run := &runState{
		coord:    c,
		pair:     pair,
		plan:     plan,
		oracle:   oracle,
		jobs:     make(chan int, k*(retries+1)),
		attempts: make([]int, k),
		retries:  retries,
		results:  make([]*shardResult, k),
		merger:   partition.NewMerger(),
	}
	for i := 0; i < k; i++ {
		run.jobs <- i
	}
	run.outstanding = k

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run.workerLoop()
		}()
	}
	wg.Wait()
	if run.err != nil {
		return nil, nil, run.err
	}

	metrics := &Metrics{Retries: run.totalRetries}
	var reports []partition.PartReport
	weights := make(map[int][]float64, len(run.results))
	for i, sr := range run.results {
		if sr == nil {
			return nil, nil, fmt.Errorf("distrib: shard %d never completed", i)
		}
		reports = append(reports, sr.report)
		weights[plan.Parts[i].Index] = sr.weights
		metrics.Shards = append(metrics.Shards, ShardMetrics{
			Shard:     plan.Parts[i].Index,
			JobBytes:  sr.jobBytes,
			Attempts:  run.attempts[i],
			Extracted: sr.extracted,
		})
		metrics.JobBytes += sr.jobBytes
		metrics.ResultBytes += sr.readBytes
	}
	metrics.Queries = int(run.queries.Load())
	res := run.merger.Finish()
	res.Reports = reports
	res.ShardWeights = weights
	res.Elapsed = time.Since(start)
	return res, metrics, nil
}

// runState is the shared dispatch state of one Run.
type runState struct {
	coord  *Coordinator
	pair   *hetnet.AlignedPair
	plan   *partition.Plan
	oracle active.Oracle

	jobs    chan int
	retries int

	oracleMu sync.Mutex // serializes oracle access across connections
	// queries counts every oracle round-trip actually answered —
	// including those of failed shard attempts whose votes were
	// discarded, since the oracle (a paid labeler, a CountingOracle) was
	// really consulted.
	queries atomic.Int64

	mu           sync.Mutex
	attempts     []int
	results      []*shardResult
	merger       *partition.Merger // commits stream in as shards finish
	outstanding  int
	totalRetries int
	err          error
	closed       bool
}

// finish closes the job channel exactly once so worker loops drain.
func (r *runState) finish() {
	if !r.closed {
		r.closed = true
		close(r.jobs)
	}
}

// workerLoop owns one (lazily dialed) connection and executes queued
// shards on it until the queue closes. A shard failure burns the
// connection — the next shard dials fresh — and requeues the shard
// until its attempt budget runs out, which aborts the whole run.
func (r *runState) workerLoop() {
	var conn io.ReadWriteCloser
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for shard := range r.jobs {
		r.mu.Lock()
		if r.err != nil {
			r.mu.Unlock()
			continue // aborted: drain the queue without executing
		}
		r.attempts[shard]++
		r.mu.Unlock()

		if conn == nil {
			var err error
			conn, err = r.dial()
			if err != nil {
				r.fail(shard, err)
				continue
			}
		}
		sr, err := r.runShard(conn, shard)
		if err != nil {
			conn.Close()
			conn = nil
			r.fail(shard, err)
			continue
		}
		r.mu.Lock()
		// Commit is transactional per shard: the votes only reach the
		// merger once the Done frame proved the stream complete, so a
		// retried shard never double-votes.
		for _, v := range sr.votes {
			r.merger.Add(v)
		}
		sr.votes = nil
		r.results[shard] = sr
		r.outstanding--
		if r.outstanding == 0 {
			r.finish()
		}
		r.mu.Unlock()
	}
}

// dial opens and handshakes a connection.
func (r *runState) dial() (io.ReadWriteCloser, error) {
	conn, err := r.coord.Transport.Dial()
	if err != nil {
		return nil, err
	}
	if err := WriteFrame(conn, FrameHello, &Hello{Role: "coordinator"}); err != nil {
		conn.Close()
		return nil, err
	}
	if err := ReadExpect(conn, FrameHello, &Hello{}); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// fail requeues the shard or aborts the run when its attempts are
// spent.
func (r *runState) fail(shard int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	if r.attempts[shard] <= r.retries {
		r.totalRetries++
		r.jobs <- shard
		return
	}
	r.err = fmt.Errorf("distrib: shard %d failed after %d attempts: %w", shard, r.attempts[shard], err)
	r.finish()
}

// runShard ships one job and consumes its frame stream to completion.
func (r *runState) runShard(conn io.ReadWriteCloser, shard int) (*shardResult, error) {
	part := &r.plan.Parts[shard]
	sh := buildShard(r.pair, part, r.coord.Opts.NoExtract)
	job := NewJob(sh, r.coord.Opts.Train)

	cw := &countingWriter{w: conn}
	if err := WriteFrame(cw, FrameJob, job); err != nil {
		return nil, err
	}
	sr := &shardResult{jobBytes: cw.n, extracted: sh.Extracted()}
	env := &streamEnv{
		oracle: r.oracle, oracleMu: &r.oracleMu, queries: &r.queries,
		onProgress: r.coord.Opts.OnProgress,
	}
	if err := collectShard(conn, part.Index, env, sr); err != nil {
		return nil, err
	}
	return sr, nil
}

// buildShard packages a part for the wire: extracted down to its feature
// closure, or the full pair when extraction is disabled or the schema is
// outside the extractor's closure argument (not fatal — ship it all).
func buildShard(pair *hetnet.AlignedPair, part *partition.Part, noExtract bool) *partition.Shard {
	if noExtract {
		return partition.FullShard(pair, part)
	}
	sh, err := partition.ExtractShard(pair, part)
	if err != nil {
		return partition.FullShard(pair, part)
	}
	return sh
}

// streamEnv is the coordinator-side context for consuming one shard's
// response stream: the serialized oracle, the round-trip audit counter,
// and the progress callback. One env may serve many concurrent
// collectShard calls.
type streamEnv struct {
	oracle     active.Oracle
	oracleMu   *sync.Mutex
	queries    *atomic.Int64
	onProgress func(Progress)
}

// collectShard consumes one shard's frame stream — votes, progress,
// oracle round-trips — through to its Done frame, accumulating into sr.
// It is shared by the single-shot coordinator and the session: the
// response protocol is identical whether the request was a Job or a
// cache-hit JobRef.
func collectShard(conn io.ReadWriter, partIndex int, env *streamEnv, sr *shardResult) error {
	cr := &countingReader{r: conn}
	defer func() { sr.readBytes += cr.n }()
	for {
		typ, body, err := ReadFrame(cr)
		if err != nil {
			return err
		}
		switch typ {
		case FrameVotes:
			var v Votes
			if err := DecodeBody(body, &v); err != nil {
				return err
			}
			if v.Shard != partIndex {
				return fmt.Errorf("distrib: votes for shard %d on shard %d's stream", v.Shard, partIndex)
			}
			for _, wv := range v.Votes {
				sr.votes = append(sr.votes, partition.Vote{
					Link:    hetnet.Anchor{I: int(wv.I), J: int(wv.J)},
					Label:   wv.Label,
					Score:   wv.Score,
					Queried: wv.Queried,
					Fixed:   wv.Fixed,
				})
			}
		case FrameProgress:
			var p Progress
			if err := DecodeBody(body, &p); err != nil {
				return err
			}
			if env.onProgress != nil {
				env.onProgress(p)
			}
		case FrameQuery:
			var q Query
			if err := DecodeBody(body, &q); err != nil {
				return err
			}
			if env.oracle == nil {
				return fmt.Errorf("distrib: worker queried shard %d but no oracle is configured", q.Shard)
			}
			env.oracleMu.Lock()
			label := env.oracle.Label(hetnet.Anchor{I: int(q.I), J: int(q.J)})
			env.oracleMu.Unlock()
			env.queries.Add(1)
			if err := WriteFrame(conn, FrameAnswer, &Answer{Seq: q.Seq, Label: label}); err != nil {
				return err
			}
		case FrameDone:
			var d Done
			if err := DecodeBody(body, &d); err != nil {
				return err
			}
			sr.report = partition.PartReport{
				Index:      partIndex,
				TrainPos:   d.TrainPos,
				Candidates: d.Candidates,
				Budget:     d.Budget,
				Queries:    d.Queries,
				Elapsed:    time.Duration(d.ElapsedNS),
			}
			sr.weights = d.W
			return nil
		case FrameError:
			var je JobError
			if err := DecodeBody(body, &je); err != nil {
				return err
			}
			return fmt.Errorf("distrib: worker failed shard %d: %s", je.Shard, je.Msg)
		default:
			return fmt.Errorf("distrib: unexpected frame type %d from worker", typ)
		}
	}
}
