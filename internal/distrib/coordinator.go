package distrib

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/partition"
	"github.com/activeiter/activeiter/internal/telemetry"
)

// Options configures a coordinator run.
type Options struct {
	// Train is the training configuration shipped with every job.
	Train TrainConfig
	// Workers caps concurrent worker connections; default
	// min(shards, GOMAXPROCS).
	Workers int
	// Retries is how many times a failed shard is re-dispatched on a
	// fresh connection before the run degrades (or aborts, with
	// NoFallback); default 2. Negative disables retries.
	Retries int
	// ShardTimeout bounds one shard attempt end to end — job write,
	// oracle round-trips, Done frame. A hung worker converts into a
	// retryable error instead of stalling the run forever: conns with
	// deadline support (TCP, loopback pipes) get read/write deadlines,
	// anything else (subprocess stdio) gets a watchdog timer that
	// force-closes the conn. Zero means defaultShardTimeout; negative
	// disables deadlines.
	ShardTimeout time.Duration
	// HedgeAfter, when positive, enables straggler hedging: a shard
	// in flight longer than max(HedgeAfter, 2×P90 of completed shard
	// durations) is re-dispatched to a second connection, the first Done
	// wins, and the loser is cancelled (Cancel frame, then close). Zero
	// disables hedging.
	HedgeAfter time.Duration
	// NoFallback disables graceful degradation. By default a shard whose
	// retry budget is exhausted — or that can never dispatch because the
	// transport is down — runs in-process over a private loopback worker
	// instead of aborting the run; the fallback shows up in
	// Metrics.Fallbacks and the per-shard Fallback flag. Bit-parity is
	// by construction: the loopback worker runs the identical
	// partition.PreparePart+Train path as a remote one.
	NoFallback bool
	// NoExtract ships every shard with the full pair (identity maps)
	// instead of its extracted neighborhood — the bytes-on-wire baseline
	// and the fallback for schemas ExtractShard refuses. Ignored when
	// seed shipping is active (seeded jobs carry no networks at all).
	NoExtract bool
	// Base, when set, is a warm counter over the run's pair whose
	// anchor-free count layer becomes the warm-counter seed (the facade
	// passes its planning counter, so the export is a cache read). Nil
	// derives the seed by cold-counting — still once per run, not once
	// per shard × worker. Ignored under NoSeed.
	Base *metadiag.Counter
	// NoSeed disables warm-counter seed shipping: every job carries its
	// extracted (or full) networks and cold-counts on the worker — the
	// v4 wire behavior, the bytes/wall-clock baseline, and the mode for
	// tests that exercise extraction itself.
	NoSeed bool
	// DeltaMaxLabels (sessions only) caps the label delta a JobRef may
	// carry: a shard whose accumulated unsent labels exceed it re-ships
	// as a full Job instead (an oversized delta plus a warm re-train can
	// cost more than a cold job). 0 means the default (4096); negative
	// disables delta shipping entirely — every round ships full jobs,
	// which is the session property-test baseline. Coordinator.Run
	// ignores it.
	DeltaMaxLabels int
	// OnProgress, when set, receives worker progress frames (from
	// concurrent goroutines; the callback must be thread-safe).
	OnProgress func(Progress)
	// Tracer, when set, records the run's span tree: a root span per run
	// (or session round), per-attempt shard spans on their own tracks —
	// hedges and fallbacks included — and the worker-side prepare/train/
	// votes spans shipped back on Done frames, stitched under their
	// coordinator parents. Nil (the default) disables tracing; jobs then
	// carry zero trace IDs and workers record nothing.
	Tracer *telemetry.Tracer
}

// ShardMetrics records one shard's wire cost; attempts > 1 means the
// shard was retried.
type ShardMetrics struct {
	Shard     int
	JobBytes  int64 // job frame bytes, last successful attempt
	Attempts  int
	Extracted bool
	// CacheHit and DeltaLabels describe session delta shipping: the
	// shard re-ran from the worker's warm cache, carrying this many new
	// labels. On a hit JobBytes is the JobRef frame's size; on a missed
	// JobRef attempt it includes both the JobRef and the fallback Job.
	CacheHit    bool
	DeltaLabels int
	// Fallback reports the shard's result came from the in-process
	// degradation path, not the transport.
	Fallback bool
	// Hedged reports a straggler hedge was dispatched for this shard
	// (whether or not the hedge won).
	Hedged bool
}

// Metrics is a run's transport audit: what crossed the wire. For a
// Session, Run returns the round's metrics and Session.Metrics the
// running totals.
type Metrics struct {
	Shards      []ShardMetrics
	JobBytes    int64 // total full-job frame bytes, successful attempts only
	DeltaBytes  int64 // total JobRef frame bytes (hit or missed attempts), successful shards only
	ResultBytes int64 // total bytes read back from workers (incl. CacheAcks)
	// Queries counts oracle round-trips actually answered, INCLUDING
	// those of failed attempts whose votes were discarded — retried
	// shards re-spend oracle labels, and this is the audit of real
	// labeling cost. Equals Result.QueryCount only on retry-free runs.
	Queries int
	Retries int // shard re-dispatches after failures
	// CacheHits/CacheMisses count JobRef verdicts (sessions only): a
	// miss is a JobRef the worker could not serve warm — worker restart,
	// eviction, fingerprint-collision defense — answered by a full-Job
	// re-ship.
	CacheHits   int
	CacheMisses int
	// Fallbacks counts shards that degraded to the in-process loopback
	// path after exhausting their transport retry budget.
	Fallbacks int
	// Hedges counts straggler hedge dispatches (duplicate attempts, not
	// necessarily winners).
	Hedges int
	// SeedBytes counts warm-counter seed negotiation bytes written
	// (SeedRef frames plus shipped Seed bodies); SeedShips counts the
	// connections that actually received the body — a ref-hit connection
	// costs only its few-byte SeedRef.
	SeedBytes int64
	SeedShips int
}

// add folds a per-shard or per-round tally into the receiver (used for
// the session's cumulative metrics).
func (m *Metrics) add(o *Metrics) {
	m.Shards = append(m.Shards, o.Shards...)
	m.JobBytes += o.JobBytes
	m.DeltaBytes += o.DeltaBytes
	m.ResultBytes += o.ResultBytes
	m.Queries += o.Queries
	m.Retries += o.Retries
	m.CacheHits += o.CacheHits
	m.CacheMisses += o.CacheMisses
	m.Fallbacks += o.Fallbacks
	m.Hedges += o.Hedges
	m.SeedBytes += o.SeedBytes
	m.SeedShips += o.SeedShips
}

// Coordinator dispatches shard jobs over a transport and reconciles the
// returned vote streams into one globally one-to-one result. A zero
// Coordinator is not usable; set Transport.
type Coordinator struct {
	Transport Transport
	Opts      Options
}

// countingWriter tallies bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// countingReader tallies bytes read through it.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// shardResult is one successful shard execution, ready to commit.
type shardResult struct {
	votes     []partition.Vote
	report    partition.PartReport
	weights   []float64 // the shard's trained model, from its Done frame
	jobBytes  int64     // full Job frame bytes written
	refBytes  int64     // JobRef frame bytes written (sessions; hit or missed attempt)
	readBytes int64
	extracted bool
	fallback  bool       // produced by the in-process degradation path
	spans     []WireSpan // worker-side spans off the Done frame (tracing only)
}

// Retry/deadline defaults shared by Coordinator and Session.
const (
	// defaultShardTimeout is the per-attempt deadline when
	// Options.ShardTimeout is zero — generous against real shard
	// training, tight against a genuinely hung worker.
	defaultShardTimeout = 2 * time.Minute
	// retryBackoffBase/retryBackoffCap shape the capped exponential
	// backoff between a shard's attempts: base×2ⁿ, jittered ±50%, capped.
	// Backoff sleeps happen in the retrying worker slot, which is the
	// point — a flapping transport must not be hammered full-speed by
	// every slot at once.
	retryBackoffBase = 10 * time.Millisecond
	retryBackoffCap  = 1 * time.Second
)

// armDeadline bounds every I/O on conn for the next d: conns with real
// deadline support (net.Conn — TCP, loopback pipes) get read/write
// deadlines, which surface as timeout errors at the blocked call;
// everything else (subprocess stdio) gets a watchdog timer that
// force-closes the conn, which surfaces as a closed-pipe error. Either
// way a hung worker becomes a retryable shard failure instead of a
// stalled run. The returned disarm must be called when the attempt
// finishes; d ≤ 0 disables.
func armDeadline(conn io.ReadWriteCloser, d time.Duration) (disarm func()) {
	if d <= 0 {
		return func() {}
	}
	if dc, can := conn.(deadlineConn); can {
		t := time.Now().Add(d)
		if dc.SetReadDeadline(t) == nil && dc.SetWriteDeadline(t) == nil {
			return func() {
				dc.SetReadDeadline(time.Time{})
				dc.SetWriteDeadline(time.Time{})
			}
		}
	}
	timer := time.AfterFunc(d, func() { conn.Close() })
	return func() { timer.Stop() }
}

// Run executes every shard of the plan on remote workers and merges
// their votes. The pair must be the ORIGINAL aligned pair the plan was
// built against; oracle may be nil when the plan's total budget is
// zero. Votes are committed to the merger only when a shard's Done
// frame arrives, so a shard that dies mid-stream retries from scratch
// without double-voting; within that rule the reconciliation is
// streaming — shards commit as they finish, in any order, and the
// merged result is order-independent.
func (c *Coordinator) Run(pair *hetnet.AlignedPair, plan *partition.Plan, oracle active.Oracle) (*partition.Result, *Metrics, error) {
	if c.Transport == nil {
		return nil, nil, fmt.Errorf("distrib: nil transport")
	}
	if pair == nil {
		return nil, nil, fmt.Errorf("distrib: nil pair")
	}
	if plan == nil || len(plan.Parts) == 0 {
		return nil, nil, fmt.Errorf("distrib: empty plan")
	}
	totalBudget := 0
	for i := range plan.Parts {
		totalBudget += plan.Parts[i].Budget
	}
	if totalBudget > 0 && oracle == nil {
		return nil, nil, fmt.Errorf("distrib: plan carries budget %d but no oracle", totalBudget)
	}
	start := time.Now()

	k := len(plan.Parts)
	workers := c.Opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}
	retries := c.Opts.Retries
	if retries == 0 {
		retries = 2
	} else if retries < 0 {
		retries = 0
	}
	shardTimeout := c.Opts.ShardTimeout
	if shardTimeout == 0 {
		shardTimeout = defaultShardTimeout
	} else if shardTimeout < 0 {
		shardTimeout = 0
	}

	tr := c.Opts.Tracer
	runSpan := tr.Start("run", 0)
	runSpan.Annotate("shards", fmt.Sprintf("%d", k))

	run := &runState{
		coord:   c,
		pair:    pair,
		plan:    plan,
		tracer:  tr,
		runSpan: runSpan.ID(),
		// Worst-case enqueues per shard: the initial dispatch, one
		// requeue per retry, one hedge duplicate, one fallback dispatch —
		// sized so no enqueue under the state mutex can ever block.
		oracle:       oracle,
		jobs:         make(chan int, k*(retries+4)),
		attempts:     make([]int, k),
		inflight:     make([]int, k),
		started:      make([]time.Time, k),
		done:         make([]bool, k),
		hedged:       make([]bool, k),
		fellBack:     make([]bool, k),
		active:       make(map[int][]io.ReadWriteCloser, k),
		retries:      retries,
		shardTimeout: shardTimeout,
		results:      make([]*shardResult, k),
		merger:       partition.NewMerger(),
		sleep:        time.Sleep,
		jitter:       rand.New(rand.NewSource(c.Opts.Train.Seed ^ 0x5DEECE66D)),
	}
	if !c.Opts.NoSeed {
		// Built eagerly, once, before the worker loops: every connection
		// ships (or ref-hits) the same pre-encoded body. A seed that
		// fails to build degrades the run to unseeded v4-style shipping
		// rather than aborting — the jobs are self-contained either way.
		if fp, body, err := buildSeed(pair, c.Opts.Base, c.Opts.Train, tr.TraceID()); err == nil {
			run.seedFP, run.seedBody = fp, body
		}
	}
	for i := 0; i < k; i++ {
		run.jobs <- i
	}
	run.outstanding = k

	if c.Opts.HedgeAfter > 0 {
		run.stopHedge = make(chan struct{})
		go run.hedgeMonitor(c.Opts.HedgeAfter)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run.workerLoop()
		}()
	}
	wg.Wait()

	metrics := run.buildMetrics()
	metrics.publish()
	if run.err != nil {
		// The error still carries metrics: a caller diagnosing an aborted
		// run needs the attempt counts and retry totals of the shards
		// that failed, not just the ones that made it.
		runSpan.End()
		return nil, metrics, run.err
	}
	var reports []partition.PartReport
	weights := make(map[int][]float64, len(run.results))
	for i, sr := range run.results {
		if sr == nil {
			runSpan.End()
			return nil, metrics, fmt.Errorf("distrib: shard %d never completed", i)
		}
		reports = append(reports, sr.report)
		weights[plan.Parts[i].Index] = sr.weights
	}
	rec := tr.Start("reconcile", runSpan.ID())
	res := run.merger.Finish()
	rec.End()
	res.Reports = reports
	res.ShardWeights = weights
	res.Elapsed = time.Since(start)
	runSpan.End()
	return res, metrics, nil
}

// buildMetrics assembles the run's transport audit. Safe to call after
// the worker loops exit (no concurrent mutation); on an aborted run the
// per-shard entries of failed shards carry their final attempt counts
// with zero byte tallies.
func (r *runState) buildMetrics() *Metrics {
	m := &Metrics{Retries: r.totalRetries, Fallbacks: r.totalFallbacks, Hedges: r.totalHedges}
	for i, sr := range r.results {
		sm := ShardMetrics{
			Shard:    r.plan.Parts[i].Index,
			Attempts: r.attempts[i],
			Hedged:   r.hedged[i],
		}
		if sr != nil {
			sm.JobBytes = sr.jobBytes
			sm.Extracted = sr.extracted
			sm.Fallback = sr.fallback
			m.JobBytes += sr.jobBytes
			m.ResultBytes += sr.readBytes
		} else {
			sm.Fallback = r.fellBack[i]
		}
		m.Shards = append(m.Shards, sm)
	}
	m.Queries = int(r.queries.Load())
	m.SeedBytes = r.seedBytes.Load()
	m.SeedShips = int(r.seedShips.Load())
	return m
}

// runState is the shared dispatch state of one Run.
type runState struct {
	coord  *Coordinator
	pair   *hetnet.AlignedPair
	plan   *partition.Plan
	oracle active.Oracle

	jobs         chan int
	retries      int
	shardTimeout time.Duration
	stopHedge    chan struct{} // non-nil when hedging; closed by finish
	sleep        func(time.Duration)

	// tracer/runSpan carry the run's trace context; a nil tracer (the
	// default) makes every span call a no-op and keeps wire trace IDs
	// zero.
	tracer  *telemetry.Tracer
	runSpan uint64

	// seedFP/seedBody are the run's pre-encoded warm-counter seed; a nil
	// body means the run ships unseeded (NoSeed, or the seed failed to
	// build). seedBytes/seedShips audit the negotiations.
	seedFP    uint64
	seedBody  []byte
	seedGate  seedGate
	seedBytes atomic.Int64
	seedShips atomic.Int64

	oracleMu sync.Mutex // serializes oracle access across connections
	// queries counts every oracle round-trip actually answered —
	// including those of failed shard attempts whose votes were
	// discarded, since the oracle (a paid labeler, a CountingOracle) was
	// really consulted.
	queries atomic.Int64

	mu       sync.Mutex
	attempts []int
	inflight []int       // concurrent attempts per shard (hedging)
	started  []time.Time // earliest running attempt's start, zero when idle
	done     []bool      // committed — late duplicates are discarded
	hedged   []bool      // a hedge was dispatched (one per shard, ever)
	fellBack []bool      // the in-process fallback was dispatched
	// active tracks every live attempt's connection per shard so the
	// winning attempt can cancel the losers.
	active         map[int][]io.ReadWriteCloser
	durations      []time.Duration // committed shard durations, for the hedge percentile
	results        []*shardResult
	merger         *partition.Merger // commits stream in as shards finish
	outstanding    int
	totalRetries   int
	totalFallbacks int
	totalHedges    int
	jitter         *rand.Rand // seeded backoff jitter, guarded by mu
	err            error
	closed         bool
}

// finish closes the job channel exactly once so worker loops drain, and
// stops the hedge monitor. Callers hold r.mu.
func (r *runState) finish() {
	if !r.closed {
		r.closed = true
		close(r.jobs)
		if r.stopHedge != nil {
			close(r.stopHedge)
		}
	}
}

// workerLoop owns one (lazily dialed) connection and executes queued
// shards on it until the queue closes. A shard failure burns the
// connection — the next shard dials fresh — and requeues the shard with
// backoff until its attempt budget runs out, which degrades the shard
// to the in-process fallback (or aborts the run under NoFallback).
func (r *runState) workerLoop() {
	var conn io.ReadWriteCloser
	var connSeeded bool // the current conn completed seed negotiation
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for shard := range r.jobs {
		r.mu.Lock()
		if r.err != nil || r.done[shard] {
			// Aborted run, or a hedged duplicate whose twin already
			// committed: drain without executing.
			r.mu.Unlock()
			continue
		}
		r.attempts[shard]++
		attempt := r.attempts[shard]
		isFallback := r.fellBack[shard]
		// A duplicate picked up while the first attempt is still in
		// flight is a hedge — the monitor enqueued it while inflight was
		// nonzero, and only hedges dispatch that way.
		isHedge := r.inflight[shard] > 0
		// A hedge dispatches immediately; a retry of a dead attempt backs
		// off first (capped exponential + jitter) so a flapping transport
		// is probed, not hammered.
		var delay time.Duration
		if !isHedge && attempt > 1 && !isFallback {
			delay = r.backoff(attempt - 1)
		}
		if r.inflight[shard] == 0 {
			r.started[shard] = time.Now()
		}
		r.inflight[shard]++
		r.mu.Unlock()

		if delay > 0 {
			r.sleep(delay)
		}

		// Each attempt renders on its own trace track — hedges and
		// fallbacks get suffixed tracks so concurrent twins never overlap
		// on one row.
		track := fmt.Sprintf("shard %d", r.plan.Parts[shard].Index)
		if isHedge {
			track += " (hedge)"
		}
		if isFallback {
			track += " (fallback)"
		}

		var sr *shardResult
		var err error
		if isFallback {
			sr, err = r.runInProcess(shard, track, attempt)
		} else {
			if conn == nil {
				conn, err = r.dialVia(r.coord.Transport)
				connSeeded = false
			}
			if err == nil && r.seedBody != nil && !connSeeded {
				// Seed negotiation happens once per connection, before its
				// first job, under the shard deadline. A failed negotiation
				// burns the conn like any shard failure — the retry redials
				// and renegotiates.
				err = r.seedConn(conn)
				connSeeded = err == nil
				if err != nil {
					conn.Close()
					conn = nil
				}
			}
			if err == nil {
				r.track(shard, conn)
				sr, err = r.runShard(conn, shard, connSeeded, track, attempt)
				r.untrack(shard, conn)
				r.reportHealth(conn, err == nil)
				if err != nil {
					conn.Close()
					conn = nil
				}
			}
		}

		r.mu.Lock()
		r.inflight[shard]--
		if r.inflight[shard] == 0 {
			r.started[shard] = time.Time{}
		}
		r.mu.Unlock()
		if err != nil {
			r.fail(shard, err)
			continue
		}
		r.commit(shard, sr)
	}
}

// track registers an attempt's connection so a winning hedge twin can
// cancel it; untrack removes it when the attempt ends on its own.
func (r *runState) track(shard int, conn io.ReadWriteCloser) {
	r.mu.Lock()
	r.active[shard] = append(r.active[shard], conn)
	r.mu.Unlock()
}

func (r *runState) untrack(shard int, conn io.ReadWriteCloser) {
	r.mu.Lock()
	defer r.mu.Unlock()
	live := r.active[shard][:0]
	for _, c := range r.active[shard] {
		if c != conn {
			live = append(live, c)
		}
	}
	r.active[shard] = live
}

// reportHealth attributes an attempt's outcome to its worker when both
// the conn and the transport support identification — the TCP
// transport's quarantine feed. Optional-interface probing keeps the
// Transport contract at one method.
func (r *runState) reportHealth(conn io.ReadWriteCloser, ok bool) {
	wc, canID := conn.(interface{ WorkerID() string })
	hr, canReport := r.coord.Transport.(interface{ ReportWorker(string, bool) })
	if canID && canReport {
		if id := wc.WorkerID(); id != "" {
			hr.ReportWorker(id, ok)
		}
	}
}

// backoff returns the retry delay before attempt n+1; callers hold r.mu
// (which also guards the RNG).
func (r *runState) backoff(n int) time.Duration {
	return backoffDelay(r.jitter, n)
}

// backoffDelay is the jittered, capped exponential delay before retry n
// (n ≥ 1): base×2ⁿ⁻¹ scaled by a uniform [0.5, 1.5) factor from the
// seeded RNG — retries spread out deterministically for a fixed seed.
// The caller guards the RNG.
func backoffDelay(rng *rand.Rand, n int) time.Duration {
	d := retryBackoffBase << uint(n-1)
	if d > retryBackoffCap || d <= 0 {
		d = retryBackoffCap
	}
	return time.Duration(float64(d) * (0.5 + rng.Float64()))
}

// commit folds a completed attempt into the merged result. Commit is
// transactional per shard: the votes only reach the merger once the
// Done frame proved the stream complete, so a retried shard never
// double-votes — and with hedging, only the FIRST completed attempt
// commits; the loser's result is discarded and its connection cancelled.
func (r *runState) commit(shard int, sr *shardResult) {
	r.mu.Lock()
	if r.done[shard] {
		r.mu.Unlock()
		return
	}
	r.done[shard] = true
	for _, v := range sr.votes {
		r.merger.Add(v)
	}
	sr.votes = nil
	r.results[shard] = sr
	if t0 := r.started[shard]; !t0.IsZero() {
		r.durations = append(r.durations, time.Since(t0))
	}
	// Losing twins (the attempt registry minus nobody — the winner
	// untracked itself before committing) get a Cancel frame and a
	// close, off-lock: a worker blocked on an oracle answer aborts
	// promptly, one deep in training notices at its next write.
	losers := append([]io.ReadWriteCloser(nil), r.active[shard]...)
	r.outstanding--
	if r.outstanding == 0 {
		r.finish()
	}
	partIndex := r.plan.Parts[shard].Index
	r.mu.Unlock()
	for _, c := range losers {
		go func(c io.ReadWriteCloser) {
			_ = WriteFrame(c, FrameCancel, &Cancel{Shard: partIndex})
			c.Close()
		}(c)
	}
}

// hedgeMonitor watches for stragglers: a shard whose sole attempt has
// been in flight longer than the hedge threshold is re-enqueued once,
// so a second worker races it. The threshold adapts — twice the P90 of
// completed shard durations, floored at hedgeAfter — because "straggler"
// only means something relative to how long shards actually take.
func (r *runState) hedgeMonitor(hedgeAfter time.Duration) {
	period := hedgeAfter / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-r.stopHedge:
			return
		case <-tick.C:
		}
		r.mu.Lock()
		threshold := hedgeAfter
		if n := len(r.durations); n >= 3 {
			sorted := append([]time.Duration(nil), r.durations...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			if p90 := 2 * sorted[n*9/10]; p90 > threshold {
				threshold = p90
			}
		}
		for shard, t0 := range r.started {
			if t0.IsZero() || r.done[shard] || r.hedged[shard] || r.inflight[shard] != 1 || r.closed {
				continue
			}
			if time.Since(t0) >= threshold {
				r.hedged[shard] = true
				r.totalHedges++
				r.jobs <- shard
			}
		}
		r.mu.Unlock()
	}
}

// dialVia opens and handshakes a connection over the given transport
// (the run's own, or the private loopback of the fallback path).
func (r *runState) dialVia(t Transport) (io.ReadWriteCloser, error) {
	return dialWorker(t)
}

// dialWorker opens and handshakes a worker connection — the shared
// coordinator-speaks-first protocol of single-shot runs, sessions, and
// the fallback path.
func dialWorker(t Transport) (io.ReadWriteCloser, error) {
	conn, err := t.Dial()
	if err != nil {
		return nil, err
	}
	if err := WriteFrame(conn, FrameHello, &Hello{Role: "coordinator"}); err != nil {
		conn.Close()
		return nil, err
	}
	if err := ReadExpect(conn, FrameHello, &Hello{}); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// fail requeues the shard, degrades it to the in-process fallback when
// its transport attempts are spent, or aborts the run when even the
// fallback failed (or NoFallback forbids it).
func (r *runState) fail(shard int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.done[shard] {
		// Run already over, or a cancelled hedge loser reporting the
		// conn its winner closed — nothing to recover.
		return
	}
	if r.attempts[shard] <= r.retries {
		r.totalRetries++
		logger.Debug("shard attempt failed, retrying",
			"shard", r.plan.Parts[shard].Index, "attempt", r.attempts[shard], "err", err)
		r.jobs <- shard
		return
	}
	if !r.coord.Opts.NoFallback && !r.fellBack[shard] {
		// Degradation ladder's last rung: the transport gave up on this
		// shard, so run it in-process over a private loopback worker —
		// the identical partition.PreparePart+Train path, so the merged
		// result is bit-identical to a healthy run's.
		r.fellBack[shard] = true
		r.totalFallbacks++
		r.jobs <- shard
		return
	}
	r.err = fmt.Errorf("distrib: shard %d failed after %d attempts: %w", shard, r.attempts[shard], err)
	r.finish()
}

// seedConn negotiates the run's warm-counter seed on a fresh
// connection, under the shard deadline, and folds the bytes into the
// run's audit. The first negotiation is gated so concurrent dials into
// a shared worker process ship one seed, not one per connection.
func (r *runState) seedConn(conn io.ReadWriteCloser) error {
	if release := r.seedGate.wait(); release != nil {
		defer release()
	}
	disarm := armDeadline(conn, r.shardTimeout)
	defer disarm()
	n, shipped, err := negotiateSeed(conn, r.seedFP, r.seedBody)
	r.seedBytes.Add(n)
	if shipped && err == nil {
		r.seedShips.Add(1)
	}
	return err
}

// runInProcess executes the shard over a private loopback transport —
// graceful degradation when the real transport is down or the shard
// exhausted its retries. The private connection negotiates the seed
// like any other (the loopback worker shares the process-wide seed
// cache, so at most the first fallback ships it).
func (r *runState) runInProcess(shard int, track string, attempt int) (*shardResult, error) {
	logger.Warn("shard degraded to in-process fallback",
		"shard", r.plan.Parts[shard].Index, "attempt", attempt)
	conn, err := r.dialVia(Loopback{})
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	seeded := false
	if r.seedBody != nil {
		if err := r.seedConn(conn); err != nil {
			return nil, err
		}
		seeded = true
	}
	sr, err := r.runShard(conn, shard, seeded, track, attempt)
	if err != nil {
		return nil, err
	}
	sr.fallback = true
	return sr, nil
}

// runShard ships one job and consumes its frame stream to completion,
// bounded by the per-shard deadline. On a seeded connection the job is
// a seeded one — original indices, no networks; otherwise the v4-style
// extracted (or full) self-contained job.
func (r *runState) runShard(conn io.ReadWriteCloser, shard int, seeded bool, track string, attempt int) (*shardResult, error) {
	part := &r.plan.Parts[shard]
	sp := r.tracer.Start(fmt.Sprintf("shard %d", part.Index), r.runSpan)
	sp.SetTrack(track)
	sp.Annotate("attempt", fmt.Sprintf("%d", attempt))
	defer sp.End()
	var job *Job
	var extracted bool
	if seeded {
		job = NewSeededJob(r.pair, part, r.coord.Opts.Train, r.seedFP)
	} else {
		ex := r.tracer.Start("extract", sp.ID())
		ex.SetTrack(track)
		sh := buildShard(r.pair, part, r.coord.Opts.NoExtract)
		job = NewJob(sh, r.coord.Opts.Train)
		extracted = sh.Extracted()
		ex.End()
	}
	// The attempt span is the wire-propagated parent: the worker's
	// prepare/train/votes spans hang under it, so a hedge twin's worker
	// spans land under the hedge attempt, not the original.
	job.TraceID = r.tracer.TraceID()
	job.SpanID = sp.ID()

	disarm := armDeadline(conn, r.shardTimeout)
	defer disarm()
	ship := r.tracer.Start("ship", sp.ID())
	ship.SetTrack(track)
	cw := &countingWriter{w: conn}
	if err := WriteFrame(cw, FrameJob, job); err != nil {
		return nil, err
	}
	ship.Annotate("bytes", fmt.Sprintf("%d", cw.n))
	ship.End()
	sr := &shardResult{jobBytes: cw.n, extracted: extracted}
	env := &streamEnv{
		oracle: r.oracle, oracleMu: &r.oracleMu, queries: &r.queries,
		onProgress: r.coord.Opts.OnProgress,
	}
	if err := collectShard(conn, part.Index, env, sr); err != nil {
		return nil, err
	}
	ingestWorkerSpans(r.tracer, track, sr.spans)
	return sr, nil
}

// buildShard packages a part for the wire: extracted down to its feature
// closure, or the full pair when extraction is disabled or the schema is
// outside the extractor's closure argument (not fatal — ship it all).
func buildShard(pair *hetnet.AlignedPair, part *partition.Part, noExtract bool) *partition.Shard {
	if noExtract {
		return partition.FullShard(pair, part)
	}
	sh, err := partition.ExtractShard(pair, part)
	if err != nil {
		return partition.FullShard(pair, part)
	}
	return sh
}

// streamEnv is the coordinator-side context for consuming one shard's
// response stream: the serialized oracle, the round-trip audit counter,
// and the progress callback. One env may serve many concurrent
// collectShard calls.
type streamEnv struct {
	oracle     active.Oracle
	oracleMu   *sync.Mutex
	queries    *atomic.Int64
	onProgress func(Progress)
}

// collectShard consumes one shard's frame stream — votes, progress,
// oracle round-trips — through to its Done frame, accumulating into sr.
// It is shared by the single-shot coordinator and the session: the
// response protocol is identical whether the request was a Job or a
// cache-hit JobRef.
func collectShard(conn io.ReadWriter, partIndex int, env *streamEnv, sr *shardResult) error {
	cr := &countingReader{r: conn}
	defer func() { sr.readBytes += cr.n }()
	for {
		typ, body, err := ReadFrame(cr)
		if err != nil {
			return err
		}
		switch typ {
		case FrameVotes:
			var v Votes
			if err := DecodeBody(body, &v); err != nil {
				return err
			}
			if v.Shard != partIndex {
				return fmt.Errorf("distrib: votes for shard %d on shard %d's stream", v.Shard, partIndex)
			}
			for _, wv := range v.Votes {
				sr.votes = append(sr.votes, partition.Vote{
					Link:    hetnet.Anchor{I: int(wv.I), J: int(wv.J)},
					Label:   wv.Label,
					Score:   wv.Score,
					Queried: wv.Queried,
					Fixed:   wv.Fixed,
				})
			}
		case FrameProgress:
			var p Progress
			if err := DecodeBody(body, &p); err != nil {
				return err
			}
			if env.onProgress != nil {
				env.onProgress(p)
			}
		case FrameQuery:
			var q Query
			if err := DecodeBody(body, &q); err != nil {
				return err
			}
			if env.oracle == nil {
				return fmt.Errorf("distrib: worker queried shard %d but no oracle is configured", q.Shard)
			}
			env.oracleMu.Lock()
			label := env.oracle.Label(hetnet.Anchor{I: int(q.I), J: int(q.J)})
			env.oracleMu.Unlock()
			env.queries.Add(1)
			if err := WriteFrame(conn, FrameAnswer, &Answer{Seq: q.Seq, Label: label}); err != nil {
				return err
			}
		case FrameDone:
			var d Done
			if err := DecodeBody(body, &d); err != nil {
				return err
			}
			sr.report = partition.PartReport{
				Index:      partIndex,
				TrainPos:   d.TrainPos,
				Candidates: d.Candidates,
				Budget:     d.Budget,
				Queries:    d.Queries,
				Elapsed:    time.Duration(d.ElapsedNS),
			}
			sr.weights = d.W
			sr.spans = d.Spans
			return nil
		case FrameError:
			var je JobError
			if err := DecodeBody(body, &je); err != nil {
				return err
			}
			return fmt.Errorf("distrib: worker failed shard %d: %s", je.Shard, je.Msg)
		default:
			return fmt.Errorf("distrib: unexpected frame type %d from worker", typ)
		}
	}
}
