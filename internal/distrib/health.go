package distrib

import (
	"sync"
	"time"
)

// Health-scoring defaults for transports that quarantine flaky workers.
const (
	// defaultQuarantineAfter is how many CONSECUTIVE failures a worker
	// accumulates before it is benched. One failure is routine (a
	// retried shard lands elsewhere); a streak means the worker itself —
	// not the shard — is the problem.
	defaultQuarantineAfter = 3
	// defaultQuarantineCooldown is how long a benched worker sits out
	// before dials may route to it again. Long enough to ride out a
	// restart, short enough that a recovered worker rejoins the same
	// run.
	defaultQuarantineCooldown = 30 * time.Second
)

// healthBoard scores workers by outcome and quarantines repeat
// offenders: a worker whose consecutive-failure streak reaches the
// threshold is skipped by Dial for a cooldown period. One success wipes
// the streak — the score is about *current* behavior, not history.
//
// The board is keyed by opaque worker IDs (the TCP transport uses the
// address); the coordinator reports outcomes through the transport's
// ReportWorker method after every shard attempt.
type healthBoard struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for deterministic tests
	workers   map[string]*workerHealth
}

type workerHealth struct {
	streak     int       // consecutive failures
	benchUntil time.Time // zero when not quarantined
}

func newHealthBoard(threshold int, cooldown time.Duration, now func() time.Time) *healthBoard {
	if threshold <= 0 {
		threshold = defaultQuarantineAfter
	}
	if cooldown <= 0 {
		cooldown = defaultQuarantineCooldown
	}
	if now == nil {
		now = time.Now
	}
	return &healthBoard{threshold: threshold, cooldown: cooldown, now: now, workers: make(map[string]*workerHealth)}
}

// report records one shard attempt's outcome for the worker.
func (b *healthBoard) report(id string, ok bool) {
	if id == "" {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	w := b.workers[id]
	if w == nil {
		w = &workerHealth{}
		b.workers[id] = w
	}
	if ok {
		w.streak = 0
		w.benchUntil = time.Time{}
		return
	}
	w.streak++
	if w.streak >= b.threshold {
		if w.streak == b.threshold {
			// Counted once per quarantine event, not per failure while
			// benched.
			mQuarantines.Inc()
			logger.Warn("worker quarantined", "worker", id, "streak", w.streak, "cooldown", b.cooldown)
		}
		w.benchUntil = b.now().Add(b.cooldown)
	}
}

// quarantined reports whether the worker is currently benched. A bench
// whose cooldown has expired is cleared (the streak survives: one more
// failure re-benches immediately, one success forgives everything).
func (b *healthBoard) quarantined(id string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	w := b.workers[id]
	if w == nil || w.benchUntil.IsZero() {
		return false
	}
	if b.now().Before(w.benchUntil) {
		return true
	}
	w.benchUntil = time.Time{}
	return false
}
