package distrib

import (
	"errors"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/oracle"
	"github.com/activeiter/activeiter/internal/partition"
)

// ---------------------------------------------------------------------
// Keystone chaos property: under injected refusals, mid-frame drops,
// byte corruption, crashes and artificial stalls, the distributed
// result is bit-identical to the fault-free in-process reference and
// the run terminates instead of hanging.
// ---------------------------------------------------------------------

func TestChaosRunIsBitIdentical(t *testing.T) {
	fx := newDistFixture(t, 3, 12)
	seeds := []int64{1, 7, 42}
	var injected, recovered int64
	for _, seed := range seeds {
		chaos := &ChaosTransport{Inner: Loopback{}, Opts: ChaosOptions{
			Seed:       seed,
			RefuseRate: 0.15,
			// ≥30% of connections die mid-frame, per the acceptance
			// criterion; corruption and crashes ride on top.
			DropRate:    0.30,
			CorruptRate: 0.15,
			CrashRate:   0.10,
			MaxDelay:    time.Millisecond,
		}}
		coord := &Coordinator{Transport: chaos, Opts: Options{
			Train: fx.train, Workers: 2, Retries: 4, ShardTimeout: 2 * time.Second,
		}}
		res, m, err := coord.Run(fx.pair, fx.plan, fx.oracle)
		if err != nil {
			t.Fatalf("seed %d: chaos run failed: %v", seed, err)
		}
		assertSameAlignment(t, res, fx.ref, fx.plan)
		s := chaos.Stats()
		injected += s.Refused + s.Dropped + s.Corrupted + s.Crashed
		recovered += int64(m.Retries + m.Fallbacks)
		if s.Dials < int64(fx.k) {
			t.Errorf("seed %d: only %d dials for %d shards", seed, s.Dials, fx.k)
		}
	}
	// Individual seeds may draw lucky fault plans; across three seeds the
	// transport must have actually injected something, and the
	// coordinator must have actually recovered from it.
	if injected == 0 {
		t.Fatal("chaos transport injected no faults across all seeds")
	}
	if recovered == 0 {
		t.Fatal("no retries or fallbacks recorded despite injected faults")
	}
}

// TestChaosDeterministicReplay: equal seeds inject equal faults and
// produce equal results. Workers is pinned to 1 so the dial sequence —
// which keys the per-connection fault plans — is scheduler-independent.
func TestChaosDeterministicReplay(t *testing.T) {
	fx := newDistFixture(t, 3, 12)
	run := func() (ChaosStats, []hetnet.Anchor) {
		chaos := &ChaosTransport{Inner: Loopback{}, Opts: ChaosOptions{
			Seed: 99, RefuseRate: 0.2, DropRate: 0.3, CorruptRate: 0.15, CrashRate: 0.1,
		}}
		coord := &Coordinator{Transport: chaos, Opts: Options{
			Train: fx.train, Workers: 1, Retries: 4, ShardTimeout: 2 * time.Second,
		}}
		res, _, err := coord.Run(fx.pair, fx.plan, fx.oracle)
		if err != nil {
			t.Fatalf("replay run failed: %v", err)
		}
		return chaos.Stats(), res.PredictedAnchors()
	}
	s1, a1 := run()
	s2, a2 := run()
	if s1 != s2 {
		t.Errorf("same seed, different injections: %+v vs %+v", s1, s2)
	}
	if len(a1) != len(a2) {
		t.Fatalf("same seed, different anchor counts: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed, different anchor %d: %+v vs %+v", i, a1[i], a2[i])
		}
	}
}

// ---------------------------------------------------------------------
// Deadlines: a worker that handshakes and then goes silent must convert
// into a retryable failure — on both deadline plumbing paths.
// ---------------------------------------------------------------------

// silentTransport dials fake workers that complete the handshake, read
// the job, and then never respond — the canonical hung worker. With
// stripDeadlines the conn hides its net.Pipe deadline support, forcing
// the coordinator onto the watchdog-timer path.
type silentTransport struct {
	stripDeadlines bool
}

func (tr silentTransport) Dial() (io.ReadWriteCloser, error) {
	here, there := net.Pipe()
	go func() {
		defer there.Close()
		if err := ReadExpect(there, FrameHello, &Hello{}); err != nil {
			return
		}
		if err := WriteFrame(there, FrameHello, &Hello{Role: "worker"}); err != nil {
			return
		}
		if _, _, err := ReadFrame(there); err != nil { // swallow the job
			return
		}
		// Hang: keep the read side open so the coordinator blocks on its
		// response until the deadline (or watchdog) kills the conn.
		io.Copy(io.Discard, there)
	}()
	if tr.stripDeadlines {
		return noDeadlineConn{inner: here}, nil
	}
	return here, nil
}

// noDeadlineConn hides the inner conn's deadline methods, modeling a
// stdio-pipe transport.
type noDeadlineConn struct {
	inner io.ReadWriteCloser
}

func (c noDeadlineConn) Read(p []byte) (int, error)  { return c.inner.Read(p) }
func (c noDeadlineConn) Write(p []byte) (int, error) { return c.inner.Write(p) }
func (c noDeadlineConn) Close() error                { return c.inner.Close() }

func TestHungWorkerHitsDeadlineAndFallsBack(t *testing.T) {
	fx := newDistFixture(t, 2, 0)
	for _, tc := range []struct {
		name  string
		strip bool
	}{
		{"conn-deadlines", false},
		{"watchdog", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			coord := &Coordinator{Transport: silentTransport{stripDeadlines: tc.strip}, Opts: Options{
				Train: fx.train, Workers: 2, Retries: -1, ShardTimeout: 150 * time.Millisecond,
			}}
			start := time.Now()
			res, m, err := coord.Run(fx.pair, fx.plan, fx.oracle)
			if err != nil {
				t.Fatalf("run failed instead of degrading: %v", err)
			}
			assertSameAlignment(t, res, fx.ref, fx.plan)
			if m.Fallbacks != fx.k {
				t.Errorf("Fallbacks = %d, want %d (every shard hung)", m.Fallbacks, fx.k)
			}
			for _, sm := range m.Shards {
				if !sm.Fallback {
					t.Errorf("shard %d not marked Fallback: %+v", sm.Shard, sm)
				}
			}
			// The whole point: the run completed on the deadline's clock,
			// not the test timeout's.
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Errorf("run took %v; deadline did not fire promptly", elapsed)
			}
		})
	}
}

// ---------------------------------------------------------------------
// Graceful degradation: transport fully down.
// ---------------------------------------------------------------------

// downTransport refuses every dial — the transport-fully-unavailable
// scenario.
type downTransport struct{}

func (downTransport) Dial() (io.ReadWriteCloser, error) {
	return nil, errors.New("dial: network unreachable")
}

func TestFallbackWhenTransportDown(t *testing.T) {
	fx := newDistFixture(t, 3, 12)
	coord := &Coordinator{Transport: downTransport{}, Opts: Options{
		Train: fx.train, Workers: 2,
	}}
	res, m, err := coord.Run(fx.pair, fx.plan, fx.oracle)
	if err != nil {
		t.Fatalf("run failed instead of degrading: %v", err)
	}
	assertSameAlignment(t, res, fx.ref, fx.plan)
	if m.Fallbacks != fx.k {
		t.Errorf("Fallbacks = %d, want %d", m.Fallbacks, fx.k)
	}
	if m.Retries == 0 {
		t.Error("expected retries before degradation")
	}
	for _, sm := range m.Shards {
		if !sm.Fallback {
			t.Errorf("shard %d not marked Fallback: %+v", sm.Shard, sm)
		}
		// Default retry budget is 2: three transport attempts, then the
		// fallback dispatch.
		if sm.Attempts != 4 {
			t.Errorf("shard %d Attempts = %d, want 4", sm.Shard, sm.Attempts)
		}
	}
}

// ---------------------------------------------------------------------
// fail-path coverage: exhausted retries under NoFallback, and the
// negative-Retries (disabled) semantics. Both must return non-nil
// Metrics carrying the final attempt counts.
// ---------------------------------------------------------------------

func TestNoFallbackAbortsWithMetrics(t *testing.T) {
	fx := newDistFixture(t, 2, 0)
	coord := &Coordinator{Transport: downTransport{}, Opts: Options{
		Train: fx.train, Workers: 1, Retries: 1, NoFallback: true,
	}}
	res, m, err := coord.Run(fx.pair, fx.plan, fx.oracle)
	if err == nil {
		t.Fatal("expected an error with the transport down and NoFallback set")
	}
	if res != nil {
		t.Error("aborted run returned a non-nil result")
	}
	if !strings.Contains(err.Error(), "after 2 attempts") {
		t.Errorf("error %q does not carry the attempt count", err)
	}
	if m == nil {
		t.Fatal("aborted run returned nil metrics")
	}
	failed := 0
	for _, sm := range m.Shards {
		if sm.Attempts == 2 { // retries+1 on the shard that exhausted its budget
			failed++
		}
		if sm.Fallback {
			t.Errorf("shard %d marked Fallback under NoFallback", sm.Shard)
		}
	}
	if failed == 0 {
		t.Errorf("no shard shows the exhausted attempt count: %+v", m.Shards)
	}
}

func TestNegativeRetriesDisablesRetry(t *testing.T) {
	fx := newDistFixture(t, 2, 0)
	coord := &Coordinator{Transport: downTransport{}, Opts: Options{
		Train: fx.train, Workers: 1, Retries: -1, NoFallback: true,
	}}
	_, m, err := coord.Run(fx.pair, fx.plan, fx.oracle)
	if err == nil {
		t.Fatal("expected an error")
	}
	if !strings.Contains(err.Error(), "after 1 attempts") {
		t.Errorf("error %q should report a single attempt", err)
	}
	if m.Retries != 0 {
		t.Errorf("Retries = %d with retries disabled", m.Retries)
	}
}

// ---------------------------------------------------------------------
// Hedging: a straggling connection gets a duplicate dispatch; the first
// Done wins and the result is unchanged.
// ---------------------------------------------------------------------

// slowFirstTransport delays every read on the FIRST dialed connection,
// manufacturing exactly one straggler.
type slowFirstTransport struct {
	inner Transport
	delay time.Duration
	mu    sync.Mutex
	dials int
}

func (tr *slowFirstTransport) Dial() (io.ReadWriteCloser, error) {
	conn, err := tr.inner.Dial()
	if err != nil {
		return nil, err
	}
	tr.mu.Lock()
	first := tr.dials == 0
	tr.dials++
	tr.mu.Unlock()
	if first {
		return &slowConn{ReadWriteCloser: conn, delay: tr.delay}, nil
	}
	return conn, nil
}

// slowConn sleeps before every read. It deliberately hides deadline
// methods so the straggler is not rescued by a timeout first.
type slowConn struct {
	io.ReadWriteCloser
	delay time.Duration
}

func (c *slowConn) Read(p []byte) (int, error) {
	time.Sleep(c.delay)
	return c.ReadWriteCloser.Read(p)
}

func TestHedgingRacesStragglers(t *testing.T) {
	fx := newDistFixture(t, 2, 0)
	tr := &slowFirstTransport{inner: Loopback{}, delay: 30 * time.Millisecond}
	coord := &Coordinator{Transport: tr, Opts: Options{
		Train: fx.train, Workers: 2, HedgeAfter: 20 * time.Millisecond,
	}}
	res, m, err := coord.Run(fx.pair, fx.plan, fx.oracle)
	if err != nil {
		t.Fatalf("hedged run failed: %v", err)
	}
	assertSameAlignment(t, res, fx.ref, fx.plan)
	if m.Hedges == 0 {
		t.Fatal("no hedge dispatched for the straggling connection")
	}
	hedged := 0
	for _, sm := range m.Shards {
		if sm.Hedged {
			hedged++
		}
	}
	if hedged == 0 {
		t.Error("Hedges counted but no shard marked Hedged")
	}
}

// ---------------------------------------------------------------------
// Worker-side Cancel: a cancel landing while the worker waits on an
// oracle answer abandons the job silently — no Error frame — and the
// connection keeps serving.
// ---------------------------------------------------------------------

func TestWorkerCancelMidQueryKeepsServing(t *testing.T) {
	fx := newDistFixture(t, 2, 6)
	here, there := net.Pipe()
	served := make(chan error, 1)
	go func() { served <- Serve(there) }()
	defer here.Close()

	if err := WriteFrame(here, FrameHello, &Hello{Role: "coordinator"}); err != nil {
		t.Fatal(err)
	}
	if err := ReadExpect(here, FrameHello, &Hello{}); err != nil {
		t.Fatal(err)
	}
	part := &fx.plan.Parts[0]
	if part.Budget == 0 {
		t.Fatal("fixture shard carries no budget; the worker would never query")
	}
	job := NewJob(buildShard(fx.pair, part, false), fx.train)
	if err := WriteFrame(here, FrameJob, job); err != nil {
		t.Fatal(err)
	}
	// Consume frames until the worker blocks on its first oracle query,
	// then cancel the job out from under it.
	for {
		typ, _, err := ReadFrame(here)
		if err != nil {
			t.Fatalf("waiting for query: %v", err)
		}
		if typ == FrameError {
			t.Fatal("worker errored before querying")
		}
		if typ == FrameQuery {
			break
		}
	}
	if err := WriteFrame(here, FrameCancel, &Cancel{Shard: job.Shard}); err != nil {
		t.Fatal(err)
	}

	// The connection must survive the abandon: a second, budget-free job
	// on the same conn runs to Done with no Error frame in between.
	job2 := *job
	job2.Budget = 0
	if err := WriteFrame(here, FrameJob, &job2); err != nil {
		t.Fatal(err)
	}
	for {
		typ, _, err := ReadFrame(here)
		if err != nil {
			t.Fatalf("after cancel: %v", err)
		}
		switch typ {
		case FrameError:
			t.Fatal("worker sent an Error frame for a cancelled job")
		case FrameQuery:
			t.Fatal("budget-free job queried the oracle")
		case FrameDone:
			here.Close()
			if err := <-served; err != nil && err != io.EOF && !strings.Contains(err.Error(), "closed pipe") {
				t.Errorf("serve loop ended badly: %v", err)
			}
			return
		}
	}
}

// ---------------------------------------------------------------------
// Health scoring: streaks bench a worker, cooldowns expire, success
// forgives; the TCP transport routes dials around benched addresses.
// ---------------------------------------------------------------------

func TestHealthBoardQuarantine(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newHealthBoard(2, time.Minute, func() time.Time { return now })

	b.report("w1", false)
	if b.quarantined("w1") {
		t.Error("benched after a single failure (threshold 2)")
	}
	b.report("w1", false)
	if !b.quarantined("w1") {
		t.Error("not benched after reaching the streak threshold")
	}
	if b.quarantined("w2") {
		t.Error("unknown worker reported quarantined")
	}

	now = now.Add(61 * time.Second)
	if b.quarantined("w1") {
		t.Error("still benched after the cooldown expired")
	}
	// The streak survives an expired bench: one more failure re-benches
	// immediately.
	b.report("w1", false)
	if !b.quarantined("w1") {
		t.Error("post-cooldown failure did not re-bench the streaky worker")
	}

	// One success forgives everything.
	b.report("w1", true)
	if b.quarantined("w1") {
		t.Error("benched after a success")
	}
	b.report("w1", false)
	if b.quarantined("w1") {
		t.Error("streak was not reset by the success")
	}
}

func TestTCPDialSkipsQuarantined(t *testing.T) {
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln1.Close()
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	bad, good := ln1.Addr().String(), ln2.Addr().String()

	tr := &TCP{Addrs: []string{bad, good}, QuarantineAfter: 1}
	tr.ReportWorker(bad, false)
	for i := 0; i < 3; i++ {
		conn, err := tr.Dial()
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		id := conn.(interface{ WorkerID() string }).WorkerID()
		conn.Close()
		if id != good {
			t.Errorf("dial %d routed to quarantined worker %s", i, id)
		}
	}
}

// ---------------------------------------------------------------------
// Exec kill-after-grace: a child that ignores stdin-close is reaped
// within the shutdown grace instead of hanging Close forever.
// ---------------------------------------------------------------------

func TestExecCloseReapsHungWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess transport in -short mode")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Skip("cannot locate test binary:", err)
	}
	tr := &Exec{
		Cmd:           exe,
		Env:           append(os.Environ(), hangEnv+"=1"),
		ShutdownGrace: 100 * time.Millisecond,
	}
	conn, err := tr.Dial()
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = conn.Close()
	elapsed := time.Since(start)
	if err == nil || !strings.Contains(err.Error(), "killed after") {
		t.Errorf("Close() = %v, want a kill-after-grace error", err)
	}
	if elapsed > 3*time.Second {
		t.Errorf("Close took %v with a 100ms grace; the reap did not bound shutdown", elapsed)
	}
	if st := conn.(*execConn).cmd.ProcessState; st == nil {
		t.Error("hung worker process was not reaped")
	}
}

// ---------------------------------------------------------------------
// Sessions under chaos: the sticky-connection path must recover from
// injected faults mid-round — redial, replay the cache handshake or
// re-ship full jobs — and still match the fault-free reference.
// ---------------------------------------------------------------------

func TestSessionSurvivesChaos(t *testing.T) {
	fx := newDistFixture(t, 3, 12)
	full, _, _ := runRoundsOnPlan(t, fx, Loopback{}, -1, 2, 12, 2)

	chaos := &ChaosTransport{Inner: Loopback{}, Opts: ChaosOptions{
		Seed: 5, RefuseRate: 0.1, DropRate: 0.25, CorruptRate: 0.1, CrashRate: 0.1,
	}}
	plan := fx.freshPlan(t, 12)
	sess, err := NewSession(chaos, fx.pair, Options{
		Train: fx.train, Workers: 2, Retries: 4, ShardTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	var res *partition.Result
	for r := 0; r < 2; r++ {
		plan.Rebudget(partition.RoundBudget(12, 2, r))
		got, _, err := sess.Run(plan, fx.oracle)
		if err != nil {
			t.Fatalf("round %d under chaos: %v", r+1, err)
		}
		res = got
		if r < 1 {
			plan.AppendLabels(got.QueriedLabels())
		}
	}
	assertSameAlignment(t, res, full, fx.plan)
	s := chaos.Stats()
	t.Logf("session chaos: %+v, cumulative %+v", s, sess.Metrics())
}

// TestChaosSessionWithNoisyPanel puts an unreliable labeler panel in
// the oracle seat of a 2-round session and demands the chaos run still
// reproduce the fault-free loopback run bit-for-bit under ≥30% frame
// loss. This is the contract that lets panels front distributed
// coordinators at all: verdicts are pure per-link functions, so shard
// retries and label-delta replays re-observe identical answers, and the
// two independent panels (one per driver) accumulate identical ledgers.
func TestChaosSessionWithNoisyPanel(t *testing.T) {
	fx := newDistFixture(t, 3, 12)
	cfg := oracle.Config{Honest: 2, Noisy: 2, FlipProb: 0.3, Adversarial: 1, Replicas: 3, Seed: 99}
	newPanel := func() *oracle.Panel {
		p, err := cfg.Build(fx.oracle)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	drive := func(transport Transport, panel *oracle.Panel) *partition.Result {
		t.Helper()
		plan := fx.freshPlan(t, 12)
		sess, err := NewSession(transport, fx.pair, Options{
			Train: fx.train, Workers: 2, Retries: 4, ShardTimeout: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		var res *partition.Result
		for r := 0; r < 2; r++ {
			plan.Rebudget(partition.RoundBudget(12, 2, r))
			got, _, err := sess.Run(plan, panel)
			if err != nil {
				t.Fatalf("round %d: %v", r+1, err)
			}
			res = got
			if r < 1 {
				plan.AppendLabels(got.QueriedLabels())
			}
		}
		return res
	}

	refPanel := newPanel()
	full := drive(Loopback{}, refPanel)

	chaos := &ChaosTransport{Inner: Loopback{}, Opts: ChaosOptions{
		Seed: 5, RefuseRate: 0.1, DropRate: 0.30, CorruptRate: 0.1, CrashRate: 0.1,
	}}
	chaosPanel := newPanel()
	res := drive(chaos, chaosPanel)

	assertSameAlignment(t, res, full, fx.plan)
	s := chaos.Stats()
	if s.Refused+s.Dropped+s.Corrupted+s.Crashed == 0 {
		t.Fatal("chaos transport injected no faults; the property was not exercised")
	}
	// Retries must not leak extra evidence into the panel: both ledgers
	// summarize the same query stream.
	fr, cr := refPanel.Report(), chaosPanel.Report()
	if cr.Queries != fr.Queries || cr.Contradictions != fr.Contradictions || len(cr.Distrusted) != len(fr.Distrusted) {
		t.Fatalf("panel ledgers diverge under chaos: %+v vs %+v", cr, fr)
	}
	t.Logf("noisy-panel session chaos: %+v, panel %d queries %d contradictions", s, cr.Queries, cr.Contradictions)
}
