package distrib

import (
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/core"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/partition"
	"github.com/activeiter/activeiter/internal/schema"
	"github.com/activeiter/activeiter/internal/telemetry"
)

// voteBatchSize caps votes per FrameVotes so one huge pool does not
// buffer an unbounded frame.
const voteBatchSize = 4096

// DefaultShardCacheSize is how many prepared shards a worker connection
// keeps warm for JobRef re-runs. Each entry holds a decoded sub-pair,
// its counter (with the shared attribute-only count layer) and the
// pool's feature matrix — megabytes at crawl scale — so the cache is
// LRU-bounded; a session's shards-per-worker is far below this in any
// sane plan, and an eviction only costs a full-Job re-ship.
const DefaultShardCacheSize = 32

// Serve runs the worker side of one connection: handshake, then a loop
// of job → (progress/query/votes)* → done until the coordinator closes
// the stream. A job-level failure is reported as an Error frame and the
// loop continues — the connection only dies on wire-level failures.
//
// Jobs are self-contained (each carries its own sub-pair), so a worker
// serves shards of different runs back to back with no setup. What a
// connection does keep is the shard cache: a fingerprinted job's
// prepared state (sub-pair, warmed counter, feature matrix, accumulated
// labels) is retained so a session's later rounds can re-run it via a
// JobRef frame carrying only the label delta — counting and feature
// extraction are paid once per shard, not once per round.
func Serve(conn io.ReadWriter) error {
	return ServeCache(conn, DefaultShardCacheSize)
}

// ServeCache is Serve with an explicit shard-cache capacity: 0 disables
// caching (every JobRef misses), which also exercises the coordinator's
// full-Job fallback in tests.
func ServeCache(conn io.ReadWriter, cacheSize int) error {
	// The coordinator speaks first: over fully synchronous links
	// (net.Pipe) two sides writing their Hello simultaneously would
	// deadlock, so the handshake is strictly coordinator-then-worker.
	if err := ReadExpect(conn, FrameHello, &Hello{}); err != nil {
		if err == io.EOF {
			return nil
		}
		return err
	}
	if err := WriteFrame(conn, FrameHello, &Hello{Role: "worker"}); err != nil {
		return err
	}
	cache := newShardCache(cacheSize)
	for {
		typ, body, err := ReadFrame(conn)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		switch typ {
		case FrameJob:
			var job Job
			if err := DecodeBody(body, &job); err != nil {
				return fmt.Errorf("distrib: decode job: %w", err)
			}
			if err := runJob(conn, &job, cache); err != nil {
				if errors.Is(err, errCancelled) {
					// The coordinator abandoned this job (a hedge twin won);
					// no Error frame is owed — loop for the next job.
					continue
				}
				if werr := WriteFrame(conn, FrameError, &JobError{Shard: job.Shard, Msg: err.Error()}); werr != nil {
					return werr
				}
			}
		case FrameJobRef:
			var ref JobRef
			if err := DecodeBody(body, &ref); err != nil {
				return fmt.Errorf("distrib: decode job ref: %w", err)
			}
			if err := runJobRef(conn, &ref, cache); err != nil {
				if errors.Is(err, errCancelled) {
					continue
				}
				if werr := WriteFrame(conn, FrameError, &JobError{Shard: ref.Shard, Msg: err.Error()}); werr != nil {
					return werr
				}
			}
		case FrameCancel:
			// A cancel that lands between jobs is a stale abandon notice
			// for a job that already finished (or never dispatched here) —
			// advisory, so drop it and keep serving.
			var c Cancel
			if err := DecodeBody(body, &c); err != nil {
				return fmt.Errorf("distrib: decode cancel: %w", err)
			}
		case FrameSeedRef:
			var ref SeedRef
			if err := DecodeBody(body, &ref); err != nil {
				return fmt.Errorf("distrib: decode seed ref: %w", err)
			}
			hit := seedCacheGet(ref.Fingerprint) != nil
			if err := WriteFrame(conn, FrameCacheAck, &CacheAck{Shard: -1, Fingerprint: ref.Fingerprint, Hit: hit}); err != nil {
				return err
			}
		case FrameSeed:
			// A decode failure here means a codec bug, not a bad seed —
			// the CRC already vouched for the bytes — so it kills the
			// connection. A successful install is confirmed with a
			// CacheAck (the coordinator blocks on it, keeping its seed
			// gate closed until the seed is actually resident); an install
			// failure (hostile entries) is reported as an Error frame with
			// the no-shard sentinel, which the coordinator's negotiation
			// read converts into a retried (self-healing) connection.
			var ws WireSeed
			if err := DecodeBody(body, &ws); err != nil {
				return fmt.Errorf("distrib: decode seed: %w", err)
			}
			if err := installSeed(&ws); err != nil {
				if werr := WriteFrame(conn, FrameError, &JobError{Shard: -1, Msg: err.Error()}); werr != nil {
					return werr
				}
			} else if err := WriteFrame(conn, FrameCacheAck, &CacheAck{Shard: -1, Fingerprint: ws.Fingerprint, Hit: true}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("distrib: worker expected a job or job-ref frame, got type %d", typ)
		}
	}
}

// preparedShard is one job's reusable pipeline state: everything that is
// a function of the fingerprint (sub-pair, counter, prepared features)
// plus the mutable label state that accumulates across a session's
// rounds.
type preparedShard struct {
	job      *Job // carries config + inverse maps; Prelabeled mirrors part.Prelabeled
	part     *partition.Part
	prepared *partition.Prepared
	feats    []schema.Named
	strategy active.Strategy
	n1, n2   int // the job's index space bounds (sub-pair, or pair when seeded)
}

// shardCache is a tiny LRU of prepared shards keyed by job fingerprint.
// Workers are single-threaded per connection, so no locking.
type shardCache struct {
	max     int
	entries map[uint64]*preparedShard
	order   []uint64 // least recently used first
}

func newShardCache(max int) *shardCache {
	return &shardCache{max: max, entries: make(map[uint64]*preparedShard)}
}

// get returns the cached shard for fp and marks it most recently used.
func (c *shardCache) get(fp uint64) *preparedShard {
	ps := c.entries[fp]
	if ps != nil {
		c.touch(fp)
	}
	return ps
}

func (c *shardCache) touch(fp uint64) {
	for k, f := range c.order {
		if f == fp {
			c.order = append(append(c.order[:k:k], c.order[k+1:]...), fp)
			return
		}
	}
	c.order = append(c.order, fp)
}

// put stores (or replaces) fp, evicting the least recently used entry
// over capacity.
func (c *shardCache) put(fp uint64, ps *preparedShard) {
	if c.max <= 0 || fp == 0 {
		return
	}
	c.entries[fp] = ps
	c.touch(fp)
	for len(c.entries) > c.max {
		old := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, old)
	}
}

// wireAbort carries a wire-level failure out of the oracle callback —
// the Oracle interface has no error channel, so the pipeline unwinds by
// panic and runJob rethrows it as a connection error.
type wireAbort struct{ err error }

// wireOracle answers oracle queries by round-tripping them to the
// coordinator, translating the worker's sub-pair indices to original
// indices first — the coordinator (and its human or truth oracle) only
// speaks the original pair.
type wireOracle struct {
	conn  io.ReadWriter
	shard int
	seq   uint64
	inv1  []int32
	inv2  []int32
}

// errCancelled unwinds a job the coordinator abandoned mid-stream (a
// hedge twin won the race). It is a job-level outcome, not a connection
// failure: the serve loop swallows it without an Error frame and keeps
// the connection for the next job.
var errCancelled = errors.New("distrib: job cancelled by coordinator")

// translate maps a job-space index through an inverse user map; an
// empty map is the identity — seeded jobs already speak original
// indices and ship no maps at all.
func translate(inv []int32, v int) int32 {
	if len(inv) == 0 {
		return int32(v)
	}
	return inv[v]
}

func (o *wireOracle) Label(a hetnet.Anchor) float64 {
	o.seq++
	q := &Query{Shard: o.shard, Seq: o.seq, I: translate(o.inv1, a.I), J: translate(o.inv2, a.J)}
	if err := WriteFrame(o.conn, FrameQuery, q); err != nil {
		panic(wireAbort{err})
	}
	// Waiting for an Answer is the one place a worker blocks on the
	// coordinator mid-job, so it is where a Cancel must be honored —
	// otherwise an abandoned worker sits here until its conn is torn
	// down.
	for {
		typ, body, err := ReadFrame(o.conn)
		if err != nil {
			panic(wireAbort{err})
		}
		switch typ {
		case FrameAnswer:
			var ans Answer
			if err := DecodeBody(body, &ans); err != nil {
				panic(wireAbort{err})
			}
			if ans.Seq != o.seq {
				panic(wireAbort{fmt.Errorf("distrib: answer seq %d for query %d", ans.Seq, o.seq)})
			}
			return ans.Label
		case FrameCancel:
			// Only one job runs per connection, so any cancel here targets
			// the current one: abandon it without an Error frame.
			panic(wireAbort{errCancelled})
		default:
			panic(wireAbort{fmt.Errorf("distrib: unexpected frame type %d, want %d", typ, FrameAnswer)})
		}
	}
}

// rethrowWire converts a wireAbort panic back into the error that kills
// the connection; any other panic propagates.
func rethrowWire(err *error) {
	if r := recover(); r != nil {
		if wa, ok := r.(wireAbort); ok {
			*err = wa.err
			return
		}
		panic(r)
	}
}

// runJob executes one shard job — decode (or seed-fork), prepare,
// train, stream — and caches the prepared state under the job's
// fingerprint. It returns the error to report as an Error frame;
// wire-level failures panic through wireAbort and are rethrown to kill
// the connection.
func runJob(conn io.ReadWriter, job *Job, cache *shardCache) (err error) {
	defer rethrowWire(&err)
	t0 := time.Now()
	tr := childTracer(job.TraceID, job.SpanID)
	prep := tr.Start("prepare", job.SpanID)
	var pair *hetnet.AlignedPair
	var part *partition.Part
	var seed *seedEntry
	if job.SeedFP != 0 {
		// Seeded job: the pair and the warm counter come from the
		// connection-negotiated seed; the job is just a pool in original
		// indices. A missing seed means the coordinator and worker
		// disagree about this connection's state — fail the shard, and
		// the retry redial renegotiates.
		if seed = seedCacheGet(job.SeedFP); seed == nil {
			return fmt.Errorf("distrib: job shard %d references seed %016x, not installed here", job.Shard, job.SeedFP)
		}
		pair = seed.pair
		if part, err = job.seededPart(pair); err != nil {
			return err
		}
	} else if pair, part, err = job.DecodeShard(); err != nil {
		return err
	}
	feats, err := ResolveFeatures(job.FeatureSet)
	if err != nil {
		return err
	}
	strategy, err := ResolveStrategy(job.Strategy)
	if err != nil {
		return err
	}
	if err := WriteFrame(conn, FrameProgress, &Progress{Shard: job.Shard, Stage: "counting"}); err != nil {
		return err
	}
	var counter *metadiag.Counter
	if seed != nil {
		// Fork shares the seeded anchor-free layer — literally the
		// in-process PartitionedAligner path, which is what makes seeded
		// votes bit-identical by construction.
		counter = seed.counter.Fork()
	} else if counter, err = metadiag.NewCounter(pair); err != nil {
		return err
	}
	counter.SetAnchors(part.TrainPos)
	prepared, err := partition.PreparePart(counter, part, feats)
	if err != nil {
		return err
	}
	ps := &preparedShard{
		job: job, part: part, prepared: prepared, feats: feats, strategy: strategy,
		n1: pair.G1.NodeCount(pair.AnchorType), n2: pair.G2.NodeCount(pair.AnchorType),
	}
	prep.Annotate("seeded", fmt.Sprintf("%v", seed != nil))
	prep.End()
	if err := trainAndStream(conn, ps, job.Budget, job.Seed, t0, tr, job.SpanID); err != nil {
		return err
	}
	// Cache only after a full successful round trip: a shard that failed
	// or died mid-stream retries from scratch anyway.
	cache.put(job.Fingerprint, ps)
	return nil
}

// runJobRef answers a JobRef: ack the cache verdict, and on a hit fold
// the label delta into the cached shard and re-run training on the warm
// prepared state. A miss (restart, eviction, collision) is not an error
// — the coordinator re-ships the full job next.
func runJobRef(conn io.ReadWriter, ref *JobRef, cache *shardCache) (err error) {
	defer rethrowWire(&err)
	ps := cache.get(ref.Fingerprint)
	// A fingerprint that resolves to a different shard index is a
	// collision (or a confused coordinator); reusing the state would
	// train the wrong shard, so it must miss.
	hit := ps != nil && ps.job.Shard == ref.Shard
	if err := WriteFrame(conn, FrameCacheAck, &CacheAck{Shard: ref.Shard, Fingerprint: ref.Fingerprint, Hit: hit}); err != nil {
		panic(wireAbort{err})
	}
	if !hit {
		return nil
	}
	t0 := time.Now()
	if err := WriteFrame(conn, FrameProgress, &Progress{Shard: ref.Shard, Stage: "cached"}); err != nil {
		panic(wireAbort{err})
	}
	for _, l := range ref.AddLabels {
		if l.I < 0 || int(l.I) >= ps.n1 || l.J < 0 || int(l.J) >= ps.n2 {
			return fmt.Errorf("distrib: job ref shard %d: label (%d,%d) out of range", ref.Shard, l.I, l.J)
		}
	}
	// The delta folds into the cached label state BEFORE training; a
	// training error afterwards is fine (the labels are real either way)
	// and a wire failure kills the connection and the cache with it.
	ps.part.Prelabeled = append(ps.part.Prelabeled, partLabels(ref.AddLabels)...)
	ps.job.Prelabeled = append(ps.job.Prelabeled, ref.AddLabels...)
	ps.part.Budget = ref.Budget
	return trainAndStream(conn, ps, ref.Budget, ref.Seed, t0, childTracer(ref.TraceID, ref.SpanID), ref.SpanID)
}

// trainAndStream runs the training half of a shard pipeline on prepared
// state and streams progress, votes and the Done report. budget and seed
// are the round's values (a cached shard's own fields may be stale).
// tr (nil when the coordinator isn't tracing) records train/votes spans
// under parent — the coordinator's wire-propagated attempt span — and
// ships everything recorded this job back on the Done frame.
func trainAndStream(conn io.ReadWriter, ps *preparedShard, budget int, seed int64, t0 time.Time, tr *telemetry.Tracer, parent uint64) error {
	job := ps.job
	ps.part.Budget = budget
	cfg := core.Config{
		C:              job.C,
		BatchSize:      job.BatchSize,
		Strategy:       ps.strategy,
		ExactSelection: job.Exact,
		Seed:           seed,
	}
	if job.HasThreshold {
		th := job.Threshold
		cfg.Threshold = &th
	}
	var oracle active.Oracle
	if budget > 0 {
		oracle = &wireOracle{conn: conn, shard: job.Shard, inv1: job.InvUsers1, inv2: job.InvUsers2}
	}
	if err := WriteFrame(conn, FrameProgress, &Progress{Shard: job.Shard, Stage: "training"}); err != nil {
		return err
	}
	train := tr.Start("train", parent)
	res, err := ps.prepared.Train(ps.part, cfg, oracle)
	if err != nil {
		return err
	}
	train.Annotate("queries", fmt.Sprintf("%d", res.QueryCount()))
	train.End()
	if err := WriteFrame(conn, FrameProgress, &Progress{Shard: job.Shard, Stage: "voting", Queries: res.QueryCount()}); err != nil {
		return err
	}

	vs := tr.Start("votes", parent)
	votes := partition.PartVotes(ps.part, ps.prepared.Links, res)
	batch := make([]Vote, 0, voteBatchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := WriteFrame(conn, FrameVotes, &Votes{Shard: job.Shard, Votes: batch}); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}
	for _, v := range votes {
		batch = append(batch, Vote{
			I:       translate(job.InvUsers1, v.Link.I),
			J:       translate(job.InvUsers2, v.Link.J),
			Label:   v.Label,
			Score:   v.Score,
			Queried: v.Queried,
			Fixed:   v.Fixed,
		})
		if len(batch) == voteBatchSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	vs.End()
	return WriteFrame(conn, FrameDone, &Done{
		Shard:      job.Shard,
		TrainPos:   len(ps.part.TrainPos),
		Candidates: len(ps.part.Candidates),
		Budget:     ps.part.Budget,
		Queries:    res.QueryCount(),
		ElapsedNS:  time.Since(t0).Nanoseconds(),
		W:          res.W,
		Spans:      wireSpans(tr),
	})
}
