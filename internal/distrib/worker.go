package distrib

import (
	"fmt"
	"io"
	"time"

	"github.com/activeiter/activeiter/internal/active"
	"github.com/activeiter/activeiter/internal/core"
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/metadiag"
	"github.com/activeiter/activeiter/internal/partition"
)

// voteBatchSize caps votes per FrameVotes so one huge pool does not
// buffer an unbounded frame.
const voteBatchSize = 4096

// Serve runs the worker side of one connection: handshake, then a loop
// of job → (progress/query/votes)* → done until the coordinator closes
// the stream. A job-level failure is reported as an Error frame and the
// loop continues — the connection only dies on wire-level failures.
// Workers are stateless between jobs: every job carries its own
// sub-pair, so a worker can serve shards of different runs back to
// back.
func Serve(conn io.ReadWriter) error {
	// The coordinator speaks first: over fully synchronous links
	// (net.Pipe) two sides writing their Hello simultaneously would
	// deadlock, so the handshake is strictly coordinator-then-worker.
	if err := ReadExpect(conn, FrameHello, &Hello{}); err != nil {
		if err == io.EOF {
			return nil
		}
		return err
	}
	if err := WriteFrame(conn, FrameHello, &Hello{Role: "worker"}); err != nil {
		return err
	}
	for {
		typ, body, err := ReadFrame(conn)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if typ != FrameJob {
			return fmt.Errorf("distrib: worker expected a job frame, got type %d", typ)
		}
		var job Job
		if err := DecodeBody(body, &job); err != nil {
			return fmt.Errorf("distrib: decode job: %w", err)
		}
		if err := runJob(conn, &job); err != nil {
			if werr := WriteFrame(conn, FrameError, &JobError{Shard: job.Shard, Msg: err.Error()}); werr != nil {
				return werr
			}
		}
	}
}

// wireAbort carries a wire-level failure out of the oracle callback —
// the Oracle interface has no error channel, so the pipeline unwinds by
// panic and runJob rethrows it as a connection error.
type wireAbort struct{ err error }

// wireOracle answers oracle queries by round-tripping them to the
// coordinator, translating the worker's sub-pair indices to original
// indices first — the coordinator (and its human or truth oracle) only
// speaks the original pair.
type wireOracle struct {
	conn  io.ReadWriter
	shard int
	seq   uint64
	inv1  []int32
	inv2  []int32
}

func (o *wireOracle) Label(a hetnet.Anchor) float64 {
	o.seq++
	q := &Query{Shard: o.shard, Seq: o.seq, I: o.inv1[a.I], J: o.inv2[a.J]}
	if err := WriteFrame(o.conn, FrameQuery, q); err != nil {
		panic(wireAbort{err})
	}
	var ans Answer
	if err := ReadExpect(o.conn, FrameAnswer, &ans); err != nil {
		panic(wireAbort{err})
	}
	if ans.Seq != o.seq {
		panic(wireAbort{fmt.Errorf("distrib: answer seq %d for query %d", ans.Seq, o.seq)})
	}
	return ans.Label
}

// runJob executes one shard pipeline and streams the results. It
// returns the error to report as an Error frame; wire-level failures
// panic through wireAbort and are rethrown to kill the connection.
func runJob(conn io.ReadWriter, job *Job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if wa, ok := r.(wireAbort); ok {
				err = wa.err
				return
			}
			panic(r)
		}
	}()
	t0 := time.Now()
	pair, part, err := job.DecodeShard()
	if err != nil {
		return err
	}
	feats, err := ResolveFeatures(job.FeatureSet)
	if err != nil {
		return err
	}
	strategy, err := ResolveStrategy(job.Strategy)
	if err != nil {
		return err
	}
	progress := func(stage string, queries int) error {
		return WriteFrame(conn, FrameProgress, &Progress{Shard: job.Shard, Stage: stage, Queries: queries})
	}
	if err := progress("counting", 0); err != nil {
		return err
	}
	counter, err := metadiag.NewCounter(pair)
	if err != nil {
		return err
	}
	counter.SetAnchors(part.TrainPos)

	cfg := core.Config{
		C:              job.C,
		Budget:         job.Budget, // TrainPart re-reads the part's slice; equal by construction
		BatchSize:      job.BatchSize,
		Strategy:       strategy,
		ExactSelection: job.Exact,
		Seed:           job.Seed,
	}
	if job.HasThreshold {
		th := job.Threshold
		cfg.Threshold = &th
	}
	var oracle active.Oracle
	if job.Budget > 0 {
		oracle = &wireOracle{conn: conn, shard: job.Shard, inv1: job.InvUsers1, inv2: job.InvUsers2}
	}
	if err := progress("training", 0); err != nil {
		return err
	}
	links, res, err := partition.TrainPart(counter, part, partition.TrainOptions{
		Features: feats,
		Core:     cfg,
	}, oracle)
	if err != nil {
		return err
	}
	if err := progress("voting", res.QueryCount()); err != nil {
		return err
	}

	votes := partition.PartVotes(part, links, res)
	batch := make([]Vote, 0, voteBatchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := WriteFrame(conn, FrameVotes, &Votes{Shard: job.Shard, Votes: batch}); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}
	for _, v := range votes {
		batch = append(batch, Vote{
			I:       job.InvUsers1[v.Link.I],
			J:       job.InvUsers2[v.Link.J],
			Label:   v.Label,
			Score:   v.Score,
			Queried: v.Queried,
			Fixed:   v.Fixed,
		})
		if len(batch) == voteBatchSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	return WriteFrame(conn, FrameDone, &Done{
		Shard:      job.Shard,
		TrainPos:   len(part.TrainPos),
		Candidates: len(part.Candidates),
		Budget:     part.Budget,
		Queries:    res.QueryCount(),
		ElapsedNS:  time.Since(t0).Nanoseconds(),
	})
}
