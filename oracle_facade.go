package activeiter

import (
	"github.com/activeiter/activeiter/internal/hetnet"
	"github.com/activeiter/activeiter/internal/oracle"
)

// Unreliable-oracle facade: Options.OracleConfig interposes a simulated
// labeler panel (internal/oracle) between the training loop and the
// caller's ground-truth oracle. See docs/ORACLES.md for the labeler
// models, the vote and trust math, and the knob reference.

// OracleConfig describes a simulated labeler pool: how many honest,
// noisy, adversarial and colluding labelers back the panel, the
// replication factor R, and the trust cutoff.
type OracleConfig = oracle.Config

// OraclePanel replicates oracle queries across R labelers, resolves by
// majority vote, tracks one-to-one contradictions, and scores
// per-labeler trust. It implements Oracle.
type OraclePanel = oracle.Panel

// PanelReport is a panel run's audit summary.
type PanelReport = oracle.Report

// LabelerTrust is one labeler's Beta-posterior trust row.
type LabelerTrust = oracle.LabelerTrust

// WeightedLabel is one panel-resolved link with its trust-weighted
// confidence, as emitted by OraclePanel.WeightedLabels and consumed by
// AlignPrelabeled.
type WeightedLabel = oracle.WeightedLabel

// NewOraclePanel builds a standalone labeler panel around a
// ground-truth oracle — the same construction Options.OracleConfig
// performs per Align call, exposed for callers that drive the panel
// directly (e.g. to harvest WeightedLabels for AlignPrelabeled).
func NewOraclePanel(cfg OracleConfig, truth Oracle) (*OraclePanel, error) {
	return cfg.Build(truth)
}

// wrapOracle interposes the configured labeler panel, if any, between
// the training loop and the caller's oracle. Each Align call gets a
// fresh panel (its ledger audits exactly one run); a nil oracle passes
// through untouched so Budget-0 runs stay valid.
func (o Options) wrapOracle(truth Oracle) (Oracle, *OraclePanel, error) {
	if o.OracleConfig == nil || truth == nil {
		return truth, nil, nil
	}
	p, err := o.OracleConfig.Build(truth)
	if err != nil {
		return nil, nil, err
	}
	return p, p, nil
}

// mapPrelabels maps weighted labels onto pool indices for
// core.Problem.Prelabeled. Links also present in trainPos (the first
// nTrain pool entries) are skipped — they are already fixed ground
// truth — as are duplicate claims on one link (first wins).
func mapPrelabels(links []Anchor, nTrain int, pre []WeightedLabel) ([]int, []float64) {
	if len(pre) == 0 {
		return nil, nil
	}
	index := make(map[int64]int, len(links))
	for idx, l := range links {
		if _, ok := index[hetnet.Key(l.I, l.J)]; !ok {
			index[hetnet.Key(l.I, l.J)] = idx
		}
	}
	taken := make(map[int]bool, len(pre))
	var preIdx []int
	var preY []float64
	for _, wl := range pre {
		idx, ok := index[hetnet.Key(wl.Link.I, wl.Link.J)]
		if !ok || idx < nTrain || taken[idx] {
			continue
		}
		taken[idx] = true
		preIdx = append(preIdx, idx)
		preY = append(preY, wl.Value())
	}
	return preIdx, preY
}

// AlignPrelabeled is Align with confidence-weighted labels from an
// earlier panel run fixed into the pool before training: each weighted
// label enters the problem the way an in-run oracle answer would
// (fixed for the whole run, excluded from query selection and from
// this run's budget), carrying WeightedLabel.Value() — the
// trust-weighted soft label — as its target. Links absent from
// candidates are added to the pool; links already in trainPos keep
// their ground-truth status.
func (a *Aligner) AlignPrelabeled(trainPos, candidates []Anchor, oracle Oracle, pre []WeightedLabel) (*Result, error) {
	return a.align(trainPos, candidates, oracle, pre)
}

// Panel returns the labeler panel of the last Align call — its trust
// scores, contradiction ledger and weighted labels. Nil when
// Options.OracleConfig is unset or Align has not run.
func (a *Aligner) Panel() *OraclePanel { return a.panel }

// Panel returns the labeler panel of the last Align call (nil when
// Options.OracleConfig is unset or Align has not run).
func (pa *PartitionedAligner) Panel() *OraclePanel { return pa.panel }

// Panel returns the labeler panel of the last Align call (nil when
// Options.OracleConfig is unset or Align has not run).
func (da *DistributedAligner) Panel() *OraclePanel { return da.panel }
